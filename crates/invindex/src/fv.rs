//! Filter & Validate (paper Section 4) and its list-dropping variant
//! (Section 6.1).
//!
//! **Filter**: probe the inverted index with every query item and union the
//! postings into a candidate set — everything sharing at least one item
//! with the query. **Validate**: evaluate the Footrule distance of each
//! candidate against the store (one DFC per candidate) and keep those
//! within the threshold.
//!
//! `F&V+Drop` accesses only the lists chosen by [`crate::drop`], skipping
//! the longest lists the overlap bound allows; candidates and DFCs shrink
//! accordingly with zero false negatives (Lemma 2).
//!
//! The `_into` entry points are the hot path: they thread a reusable
//! [`QueryScratch`] (epoch-versioned candidate set, flat query map) and
//! append into caller-owned buffers, performing zero heap allocations in
//! steady state. The plain functions are thin compatibility wrappers that
//! allocate a scratch per call.

use crate::drop::keep_positions_into;
use crate::order::{rank_window, PostingOrder};
use crate::plain::PlainInvertedIndex;
use ranksim_rankings::{ItemId, Kernel, QueryScratch, QueryStats, RankingId, RankingStore};

/// F&V: returns all indexed rankings within `theta_raw` of the query.
pub fn filter_validate(
    index: &PlainInvertedIndex,
    store: &RankingStore,
    query: &[ItemId],
    theta_raw: u32,
    stats: &mut QueryStats,
) -> Vec<RankingId> {
    let mut scratch = QueryScratch::new();
    let mut out = Vec::new();
    filter_validate_into(
        index,
        store,
        query,
        theta_raw,
        Kernel::default(),
        &mut scratch,
        stats,
        &mut out,
    );
    out
}

/// F&V+Drop: like [`filter_validate`] but only accesses the index lists
/// Lemma 2 requires.
pub fn filter_validate_drop(
    index: &PlainInvertedIndex,
    store: &RankingStore,
    query: &[ItemId],
    theta_raw: u32,
    stats: &mut QueryStats,
) -> Vec<RankingId> {
    let mut scratch = QueryScratch::new();
    let mut out = Vec::new();
    filter_validate_drop_into(
        index,
        store,
        query,
        theta_raw,
        Kernel::default(),
        &mut scratch,
        stats,
        &mut out,
    );
    out
}

/// Scratch-reusing F&V; appends results to `out`.
#[allow(clippy::too_many_arguments)]
pub fn filter_validate_into(
    index: &PlainInvertedIndex,
    store: &RankingStore,
    query: &[ItemId],
    theta_raw: u32,
    kernel: Kernel,
    scratch: &mut QueryScratch,
    stats: &mut QueryStats,
    out: &mut Vec<RankingId>,
) {
    let mut positions = std::mem::take(&mut scratch.positions);
    positions.clear();
    positions.extend(0..query.len());
    let mut hits = std::mem::take(&mut scratch.hits);
    hits.clear();
    filter_validate_positions_into(
        index, store, query, &positions, theta_raw, kernel, scratch, stats, &mut hits,
    );
    out.extend(hits.iter().map(|&(id, _)| id));
    scratch.hits = hits;
    scratch.positions = positions;
}

/// Scratch-reusing F&V+Drop; appends results to `out`.
#[allow(clippy::too_many_arguments)]
pub fn filter_validate_drop_into(
    index: &PlainInvertedIndex,
    store: &RankingStore,
    query: &[ItemId],
    theta_raw: u32,
    kernel: Kernel,
    scratch: &mut QueryScratch,
    stats: &mut QueryStats,
    out: &mut Vec<RankingId>,
) {
    let mut positions = std::mem::take(&mut scratch.positions);
    let mut by_len = std::mem::take(&mut scratch.positions_tmp);
    keep_positions_into(
        query,
        theta_raw,
        |p| index.list_len(query[p]),
        &mut positions,
        &mut by_len,
    );
    let mut hits = std::mem::take(&mut scratch.hits);
    hits.clear();
    filter_validate_positions_into(
        index, store, query, &positions, theta_raw, kernel, scratch, stats, &mut hits,
    );
    out.extend(hits.iter().map(|&(id, _)| id));
    scratch.hits = hits;
    scratch.positions = positions;
    scratch.positions_tmp = by_len;
}

/// Shared core returning `(id, distance)` pairs — the coarse index uses
/// the distances to seed partition validation without recomputation.
pub fn filter_validate_positions(
    index: &PlainInvertedIndex,
    store: &RankingStore,
    query: &[ItemId],
    positions: &[usize],
    theta_raw: u32,
    stats: &mut QueryStats,
) -> Vec<(RankingId, u32)> {
    let mut scratch = QueryScratch::new();
    let mut out = Vec::new();
    filter_validate_positions_into(
        index,
        store,
        query,
        positions,
        theta_raw,
        Kernel::default(),
        &mut scratch,
        stats,
        &mut out,
    );
    out
}

/// Scratch-reusing core of every F&V variant: unions the postings of the
/// selected query positions through the epoch-versioned candidate set,
/// then validates each candidate with one flat-map distance evaluation.
/// Appends `(id, distance)` pairs to `out`.
///
/// On a [`PostingOrder::SuffixBound`] index the filter scans only the
/// `[q_rank − θ, q_rank + θ]` rank window of each list: a candidate whose
/// *every* shared item sits outside its window contributes `> θ` through
/// any one of those items alone (the matched Footrule term is
/// `|rank − q_rank|`), so never marking it cannot lose a result — any
/// within-θ candidate is marked through some in-window item. Skipped
/// entries land in `postings_skipped` rather than `entries_scanned`.
/// Validation dispatches on `kernel` through
/// [`ranksim_rankings::scratch::FlatPositionMap::distance_within`]; a
/// pruned walk (`None`) is a proven miss counted in `validations_pruned`.
/// Result sets are bit-identical across orderings and kernels.
#[allow(clippy::too_many_arguments)]
pub fn filter_validate_positions_into(
    index: &PlainInvertedIndex,
    store: &RankingStore,
    query: &[ItemId],
    positions: &[usize],
    theta_raw: u32,
    kernel: Kernel,
    scratch: &mut QueryScratch,
    stats: &mut QueryStats,
    out: &mut Vec<(RankingId, u32)>,
) {
    debug_assert_eq!(index.k(), query.len());
    let remap = index.remap();
    let QueryScratch { qmap, marks, .. } = scratch;
    // Filtering phase: union of the selected postings lists (windowed on
    // a suffix-bound-ordered index).
    marks.begin(store.len());
    if index.order() == PostingOrder::SuffixBound {
        for &p in positions {
            if let Some((ids, ranks)) = index.list_with_ranks(query[p]) {
                let (s, e) = rank_window(ranks, p as u32, theta_raw);
                stats.count_list(e - s);
                stats.postings_skipped += (ids.len() - (e - s)) as u64;
                for &id in &ids[s..e] {
                    marks.mark(id.0);
                }
            } else {
                stats.count_list(0);
            }
        }
    } else {
        for &p in positions {
            if let Some(list) = index.list(query[p]) {
                stats.count_list(list.len());
                for &id in list {
                    marks.mark(id.0);
                }
            } else {
                stats.count_list(0);
            }
        }
    }
    stats.candidates += marks.len() as u64;
    // Validation phase: one distance call per candidate.
    qmap.build(remap, query);
    let out_start = out.len();
    for &id in marks.keys() {
        stats.count_distance();
        match qmap.distance_within(remap, store.items(RankingId(id)), theta_raw, kernel) {
            Some(d) if d <= theta_raw => out.push((RankingId(id), d)),
            Some(_) => {}
            None => stats.validations_pruned += 1,
        }
    }
    stats.results += (out.len() - out_start) as u64;
}

/// Variant of [`filter_validate_positions_into`] that validates against
/// the *relaxed* threshold but reports distances, for coarse-index
/// filtering (query medoids with `θ + θ_C`, Section 4.2).
#[allow(clippy::too_many_arguments)]
pub fn filter_validate_relaxed_into(
    index: &PlainInvertedIndex,
    store: &RankingStore,
    query: &[ItemId],
    relaxed_theta_raw: u32,
    drop_lists: bool,
    kernel: Kernel,
    scratch: &mut QueryScratch,
    stats: &mut QueryStats,
    out: &mut Vec<(RankingId, u32)>,
) {
    let mut positions = std::mem::take(&mut scratch.positions);
    if drop_lists {
        let mut by_len = std::mem::take(&mut scratch.positions_tmp);
        keep_positions_into(
            query,
            relaxed_theta_raw,
            |p| index.list_len(query[p]),
            &mut positions,
            &mut by_len,
        );
        scratch.positions_tmp = by_len;
    } else {
        positions.clear();
        positions.extend(0..query.len());
    }
    filter_validate_positions_into(
        index,
        store,
        query,
        &positions,
        relaxed_theta_raw,
        kernel,
        scratch,
        stats,
        out,
    );
    scratch.positions = positions;
}

/// Allocating wrapper around [`filter_validate_relaxed_into`].
pub fn filter_validate_relaxed(
    index: &PlainInvertedIndex,
    store: &RankingStore,
    query: &[ItemId],
    relaxed_theta_raw: u32,
    drop_lists: bool,
    stats: &mut QueryStats,
) -> Vec<(RankingId, u32)> {
    let mut scratch = QueryScratch::new();
    let mut out = Vec::new();
    filter_validate_relaxed_into(
        index,
        store,
        query,
        relaxed_theta_raw,
        drop_lists,
        Kernel::default(),
        &mut scratch,
        stats,
        &mut out,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_equals_scan, perturbed_query, random_store, scan};
    use ranksim_rankings::{raw_threshold, PositionMap};

    #[test]
    fn fv_equals_scan() {
        let store = random_store(300, 7, 60, 100);
        let index = PlainInvertedIndex::build(&store);
        for seed in 0..12u64 {
            let q = perturbed_query(&store, RankingId((seed * 23 % 300) as u32), 60, seed);
            for theta in [0.0, 0.1, 0.2, 0.3] {
                let raw = raw_threshold(theta, 7);
                let mut stats = QueryStats::new();
                let got = filter_validate(&index, &store, &q, raw, &mut stats);
                assert_equals_scan(&store, &q, raw, got);
            }
        }
    }

    #[test]
    fn fv_drop_equals_scan() {
        let store = random_store(300, 7, 60, 200);
        let index = PlainInvertedIndex::build(&store);
        for seed in 0..12u64 {
            let q = perturbed_query(&store, RankingId((seed * 31 % 300) as u32), 60, seed);
            for theta in [0.0, 0.1, 0.2, 0.3] {
                let raw = raw_threshold(theta, 7);
                let mut stats = QueryStats::new();
                let got = filter_validate_drop(&index, &store, &q, raw, &mut stats);
                assert_equals_scan(&store, &q, raw, got);
            }
        }
    }

    #[test]
    fn shared_scratch_across_queries_equals_fresh_scratch() {
        let store = random_store(250, 6, 50, 123);
        let index = PlainInvertedIndex::build(&store);
        let mut shared = QueryScratch::new();
        for seed in 0..20u64 {
            let q = perturbed_query(&store, RankingId((seed * 13 % 250) as u32), 50, seed);
            let raw = raw_threshold(0.05 * (seed % 5) as f64, 6);
            let mut s1 = QueryStats::new();
            let mut s2 = QueryStats::new();
            let mut via_shared = Vec::new();
            filter_validate_into(
                &index,
                &store,
                &q,
                raw,
                Kernel::default(),
                &mut shared,
                &mut s1,
                &mut via_shared,
            );
            let via_fresh = filter_validate(&index, &store, &q, raw, &mut s2);
            let mut a = via_shared;
            let mut b = via_fresh;
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "stale scratch state leaked at seed {seed}");
            assert_eq!(s1, s2, "stats must not depend on scratch reuse");
        }
    }

    #[test]
    fn drop_accesses_fewer_lists_and_distances() {
        let store = random_store(500, 10, 80, 300);
        let index = PlainInvertedIndex::build(&store);
        let q = perturbed_query(&store, RankingId(123), 80, 9);
        let raw = raw_threshold(0.1, 10);
        let mut s_full = QueryStats::new();
        let mut s_drop = QueryStats::new();
        let a = filter_validate(&index, &store, &q, raw, &mut s_full);
        let b = filter_validate_drop(&index, &store, &q, raw, &mut s_drop);
        assert_eq!(
            {
                let mut a = a;
                a.sort_unstable();
                a
            },
            {
                let mut b = b;
                b.sort_unstable();
                b
            }
        );
        assert!(s_drop.lists_accessed < s_full.lists_accessed);
        assert!(s_drop.distance_calls <= s_full.distance_calls);
        // k=10, θ=0.1 ⇒ ω=7 ⇒ only 3 lists accessed.
        assert_eq!(s_drop.lists_accessed, 3);
    }

    #[test]
    fn relaxed_reports_correct_distances() {
        let store = random_store(150, 6, 40, 5);
        let index = PlainInvertedIndex::build(&store);
        let q = perturbed_query(&store, RankingId(10), 40, 77);
        let qmap = PositionMap::new(&q);
        let mut stats = QueryStats::new();
        for (id, d) in filter_validate_relaxed(&index, &store, &q, 20, false, &mut stats) {
            assert_eq!(d, qmap.distance_to(store.items(id)));
            assert!(d <= 20);
        }
    }

    #[test]
    fn every_order_and_kernel_combination_equals_scan() {
        use crate::order::PostingOrder;
        use ranksim_rankings::ItemRemap;
        use std::sync::Arc;
        let store = random_store(300, 7, 60, 400);
        let remap = Arc::new(ItemRemap::build(&store));
        let indices = [
            PlainInvertedIndex::build_with_remap_ordered(
                &store,
                remap.clone(),
                store.live_ids(),
                PostingOrder::Id,
            ),
            PlainInvertedIndex::build_with_remap_ordered(
                &store,
                remap.clone(),
                store.live_ids(),
                PostingOrder::SuffixBound,
            ),
        ];
        let mut scratch = QueryScratch::new();
        for seed in 0..10u64 {
            let q = perturbed_query(&store, RankingId((seed * 29 % 300) as u32), 60, seed);
            for theta in [0.0, 0.1, 0.2, 0.4] {
                let raw = raw_threshold(theta, 7);
                for index in &indices {
                    for kernel in [Kernel::Scalar, Kernel::Simd] {
                        let mut stats = QueryStats::new();
                        let mut out = Vec::new();
                        filter_validate_into(
                            index,
                            &store,
                            &q,
                            raw,
                            kernel,
                            &mut scratch,
                            &mut stats,
                            &mut out,
                        );
                        assert_equals_scan(&store, &q, raw, out);
                    }
                }
            }
        }
    }

    #[test]
    fn suffix_bound_window_skips_postings_without_losing_results() {
        use crate::order::PostingOrder;
        use ranksim_rankings::ItemRemap;
        use std::sync::Arc;
        let store = random_store(500, 10, 80, 500);
        let remap = Arc::new(ItemRemap::build(&store));
        let sb = PlainInvertedIndex::build_with_remap_ordered(
            &store,
            remap.clone(),
            store.live_ids(),
            PostingOrder::SuffixBound,
        );
        let plain = PlainInvertedIndex::build_with_remap(&store, remap, store.live_ids());
        let q = perturbed_query(&store, RankingId(123), 80, 9);
        let raw = raw_threshold(0.05, 10);
        let mut s_sb = QueryStats::new();
        let mut s_id = QueryStats::new();
        let a = filter_validate(&plain, &store, &q, raw, &mut s_id);
        let mut scratch = QueryScratch::new();
        let mut b = Vec::new();
        filter_validate_into(
            &sb,
            &store,
            &q,
            raw,
            Kernel::Simd,
            &mut scratch,
            &mut s_sb,
            &mut b,
        );
        let mut a = a;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(
            s_sb.postings_skipped > 0,
            "tight θ must window out postings"
        );
        assert!(s_sb.entries_scanned < s_id.entries_scanned);
        assert_eq!(
            s_sb.entries_scanned + s_sb.postings_skipped,
            s_id.entries_scanned,
            "windowing partitions the scan, it never drops postings silently"
        );
    }

    #[test]
    fn zero_overlap_queries_return_empty() {
        let store = random_store(100, 5, 30, 6);
        let index = PlainInvertedIndex::build(&store);
        // Items far outside the domain: no list exists.
        let q: Vec<ItemId> = (1000..1005u32).map(ItemId).collect();
        let mut stats = QueryStats::new();
        let got = filter_validate(&index, &store, &q, 10, &mut stats);
        assert!(got.is_empty());
        assert_eq!(stats.distance_calls, 0);
        assert_eq!(scan(&store, &q, 10).len(), 0);
    }
}
