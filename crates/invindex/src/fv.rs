//! Filter & Validate (paper Section 4) and its list-dropping variant
//! (Section 6.1).
//!
//! **Filter**: probe the inverted index with every query item and union the
//! postings into a candidate set — everything sharing at least one item
//! with the query. **Validate**: evaluate the Footrule distance of each
//! candidate against the store (one DFC per candidate) and keep those
//! within the threshold.
//!
//! `F&V+Drop` accesses only the lists chosen by [`crate::drop`], skipping
//! the longest lists the overlap bound allows; candidates and DFCs shrink
//! accordingly with zero false negatives (Lemma 2).

use crate::drop::keep_positions;
use crate::plain::PlainInvertedIndex;
use ranksim_rankings::hash::fx_set_with_capacity;
use ranksim_rankings::{ItemId, PositionMap, QueryStats, RankingId, RankingStore};

/// F&V: returns all indexed rankings within `theta_raw` of the query.
pub fn filter_validate(
    index: &PlainInvertedIndex,
    store: &RankingStore,
    query: &[ItemId],
    theta_raw: u32,
    stats: &mut QueryStats,
) -> Vec<RankingId> {
    let positions: Vec<usize> = (0..query.len()).collect();
    let with_d = filter_validate_positions(index, store, query, &positions, theta_raw, stats);
    with_d.into_iter().map(|(id, _)| id).collect()
}

/// F&V+Drop: like [`filter_validate`] but only accesses the index lists
/// Lemma 2 requires.
pub fn filter_validate_drop(
    index: &PlainInvertedIndex,
    store: &RankingStore,
    query: &[ItemId],
    theta_raw: u32,
    stats: &mut QueryStats,
) -> Vec<RankingId> {
    let kept = keep_positions(query, theta_raw, |p| index.list_len(query[p]));
    let with_d = filter_validate_positions(index, store, query, &kept, theta_raw, stats);
    with_d.into_iter().map(|(id, _)| id).collect()
}

/// Shared core returning `(id, distance)` pairs — the coarse index uses
/// the distances to seed partition validation without recomputation.
pub fn filter_validate_positions(
    index: &PlainInvertedIndex,
    store: &RankingStore,
    query: &[ItemId],
    positions: &[usize],
    theta_raw: u32,
    stats: &mut QueryStats,
) -> Vec<(RankingId, u32)> {
    debug_assert_eq!(index.k(), query.len());
    // Filtering phase: union of the selected postings lists.
    let mut candidates = fx_set_with_capacity::<RankingId>(64);
    for &p in positions {
        if let Some(list) = index.list(query[p]) {
            stats.count_list(list.len());
            candidates.extend(list.iter().copied());
        } else {
            stats.count_list(0);
        }
    }
    stats.candidates += candidates.len() as u64;
    // Validation phase: one distance call per candidate.
    let qmap = PositionMap::new(query);
    let mut out = Vec::new();
    for id in candidates {
        stats.count_distance();
        let d = qmap.distance_to(store.items(id));
        if d <= theta_raw {
            out.push((id, d));
        }
    }
    stats.results += out.len() as u64;
    out
}

/// Variant of [`filter_validate_positions`] that validates against the
/// *relaxed* threshold but reports distances, for coarse-index filtering
/// (query medoids with `θ + θ_C`, Section 4.2).
pub fn filter_validate_relaxed(
    index: &PlainInvertedIndex,
    store: &RankingStore,
    query: &[ItemId],
    relaxed_theta_raw: u32,
    drop_lists: bool,
    stats: &mut QueryStats,
) -> Vec<(RankingId, u32)> {
    let positions: Vec<usize> = if drop_lists {
        keep_positions(query, relaxed_theta_raw, |p| index.list_len(query[p]))
    } else {
        (0..query.len()).collect()
    };
    filter_validate_positions(index, store, query, &positions, relaxed_theta_raw, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_equals_scan, perturbed_query, random_store, scan};
    use ranksim_rankings::raw_threshold;

    #[test]
    fn fv_equals_scan() {
        let store = random_store(300, 7, 60, 100);
        let index = PlainInvertedIndex::build(&store);
        for seed in 0..12u64 {
            let q = perturbed_query(&store, RankingId((seed * 23 % 300) as u32), 60, seed);
            for theta in [0.0, 0.1, 0.2, 0.3] {
                let raw = raw_threshold(theta, 7);
                let mut stats = QueryStats::new();
                let got = filter_validate(&index, &store, &q, raw, &mut stats);
                assert_equals_scan(&store, &q, raw, got);
            }
        }
    }

    #[test]
    fn fv_drop_equals_scan() {
        let store = random_store(300, 7, 60, 200);
        let index = PlainInvertedIndex::build(&store);
        for seed in 0..12u64 {
            let q = perturbed_query(&store, RankingId((seed * 31 % 300) as u32), 60, seed);
            for theta in [0.0, 0.1, 0.2, 0.3] {
                let raw = raw_threshold(theta, 7);
                let mut stats = QueryStats::new();
                let got = filter_validate_drop(&index, &store, &q, raw, &mut stats);
                assert_equals_scan(&store, &q, raw, got);
            }
        }
    }

    #[test]
    fn drop_accesses_fewer_lists_and_distances() {
        let store = random_store(500, 10, 80, 300);
        let index = PlainInvertedIndex::build(&store);
        let q = perturbed_query(&store, RankingId(123), 80, 9);
        let raw = raw_threshold(0.1, 10);
        let mut s_full = QueryStats::new();
        let mut s_drop = QueryStats::new();
        let a = filter_validate(&index, &store, &q, raw, &mut s_full);
        let b = filter_validate_drop(&index, &store, &q, raw, &mut s_drop);
        assert_eq!(
            {
                let mut a = a;
                a.sort_unstable();
                a
            },
            {
                let mut b = b;
                b.sort_unstable();
                b
            }
        );
        assert!(s_drop.lists_accessed < s_full.lists_accessed);
        assert!(s_drop.distance_calls <= s_full.distance_calls);
        // k=10, θ=0.1 ⇒ ω=7 ⇒ only 3 lists accessed.
        assert_eq!(s_drop.lists_accessed, 3);
    }

    #[test]
    fn relaxed_reports_correct_distances() {
        let store = random_store(150, 6, 40, 5);
        let index = PlainInvertedIndex::build(&store);
        let q = perturbed_query(&store, RankingId(10), 40, 77);
        let qmap = PositionMap::new(&q);
        let mut stats = QueryStats::new();
        for (id, d) in filter_validate_relaxed(&index, &store, &q, 20, false, &mut stats) {
            assert_eq!(d, qmap.distance_to(store.items(id)));
            assert!(d <= 20);
        }
    }

    #[test]
    fn zero_overlap_queries_return_empty() {
        let store = random_store(100, 5, 30, 6);
        let index = PlainInvertedIndex::build(&store);
        // Items far outside the domain: no list exists.
        let q: Vec<ItemId> = (1000..1005u32).map(ItemId).collect();
        let mut stats = QueryStats::new();
        let got = filter_validate(&index, &store, &q, 10, &mut stats);
        assert!(got.is_empty());
        assert_eq!(stats.distance_calls, 0);
        assert_eq!(scan(&store, &q, 10).len(), 0);
    }
}
