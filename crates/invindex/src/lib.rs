//! Inverted-index structures and query-processing algorithms for
//! top-k-list similarity search.
//!
//! Rankings are sets with rank information, so they can be indexed in
//! classical inverted indices (Helmer & Moerkotte, VLDB J. 2003). This
//! crate provides the three index layouts and the five algorithms of the
//! paper's Sections 4, 6 and 7:
//!
//! | structure | layout | paper |
//! |---|---|---|
//! | [`PlainInvertedIndex`] | item → id-sorted ranking ids | Section 4 |
//! | [`AugmentedInvertedIndex`] | item → id-sorted `(id, rank)` postings | Section 6.2 |
//! | [`BlockedInvertedIndex`] | item → rank-sorted postings with per-rank block offsets | Section 6.3 |
//!
//! | algorithm | entry point | paper name |
//! |---|---|---|
//! | filter & validate | [`fv::filter_validate`] | F&V |
//! | F&V with list dropping | [`fv::filter_validate_drop`] | F&V+Drop |
//! | id-sorted merge with aggregation | [`listmerge::list_merge`] | ListMerge |
//! | blocked access with pruning | [`blocked_prune::blocked_prune`] | Blocked+Prune |
//! | blocked access, pruning and dropping | [`blocked_prune::blocked_prune_drop`] | Blocked+Prune+Drop |
//! | per-query materialized oracle | [`minimal::MinimalFv`] | Minimal F&V |
//!
//! The overlap-based dropping criterion (Lemma 2) lives in [`mod@drop`], the
//! NRA-style partial-information distance bounds in [`bounds`].

pub mod augmented;
pub mod blocked;
pub mod blocked_prune;
pub mod bounds;
pub mod drop;
pub mod executors;
pub mod fv;
pub mod listmerge;
pub mod minimal;
pub mod order;
pub mod plain;

#[doc(hidden)]
pub use augmented::AugmentedIndexParts;
pub use augmented::{AugmentedInvertedIndex, Posting};
#[doc(hidden)]
pub use blocked::BlockedIndexParts;
pub use blocked::BlockedInvertedIndex;
pub use drop::{keep_positions, keep_positions_into, omega};
pub use executors::{BlockedPruneExecutor, FvDropExecutor, FvExecutor, ListMergeExecutor};
pub use minimal::MinimalFv;
#[doc(hidden)]
pub use order::rank_window;
pub use order::{ParsePostingOrderError, PostingOrder};
pub use plain::PlainInvertedIndex;
#[doc(hidden)]
pub use plain::{validate_rank_sorted, PlainIndexParts};

#[cfg(test)]
pub(crate) mod testutil {
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    use ranksim_rankings::{ItemId, PositionMap, RankingId, RankingStore};

    /// Random corpus with planted near-duplicates (mirrors the metricspace
    /// test generator; duplicated locally to keep crate deps acyclic).
    pub fn random_store(n: usize, k: usize, domain: u32, seed: u64) -> RankingStore {
        assert!(domain as usize >= k);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = RankingStore::with_capacity(k, n);
        let mut base: Vec<Vec<u32>> = Vec::new();
        for i in 0..n {
            let items: Vec<u32> = if !base.is_empty() && rng.random_bool(0.5) {
                let mut items = base[rng.random_range(0..base.len())].clone();
                if rng.random_bool(0.5) {
                    let a = rng.random_range(0..k);
                    let b = rng.random_range(0..k);
                    items.swap(a, b);
                } else {
                    let p = rng.random_range(0..k);
                    let mut cand = rng.random_range(0..domain);
                    while items.contains(&cand) {
                        cand = rng.random_range(0..domain);
                    }
                    items[p] = cand;
                }
                items
            } else {
                let mut pool: Vec<u32> = (0..domain).collect();
                pool.shuffle(&mut rng);
                pool.truncate(k);
                pool
            };
            if i % 3 == 0 {
                base.push(items.clone());
            }
            let ids: Vec<ItemId> = items.into_iter().map(ItemId).collect();
            store.push_items_unchecked(&ids);
        }
        store
    }

    /// Brute-force oracle.
    pub fn scan(store: &RankingStore, query: &[ItemId], theta_raw: u32) -> Vec<RankingId> {
        let q = PositionMap::new(query);
        store
            .ids()
            .filter(|&id| q.distance_to(store.items(id)) <= theta_raw)
            .collect()
    }

    /// Asserts an algorithm's output equals the brute-force result set.
    pub fn assert_equals_scan(
        store: &RankingStore,
        query: &[ItemId],
        theta_raw: u32,
        mut got: Vec<RankingId>,
    ) {
        let mut expect = scan(store, query, theta_raw);
        expect.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, expect, "θ={theta_raw} q={query:?}");
    }

    /// A query derived from a stored ranking by light perturbation, so that
    /// result sets are non-trivial.
    pub fn perturbed_query(
        store: &RankingStore,
        id: RankingId,
        domain: u32,
        seed: u64,
    ) -> Vec<ItemId> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut items: Vec<ItemId> = store.items(id).to_vec();
        let k = items.len();
        for _ in 0..rng.random_range(0..3) {
            let a = rng.random_range(0..k);
            let b = rng.random_range(0..k);
            items.swap(a, b);
        }
        if rng.random_bool(0.4) {
            let p = rng.random_range(0..k);
            let mut cand = ItemId(rng.random_range(0..domain));
            while items.contains(&cand) {
                cand = ItemId(rng.random_range(0..domain));
            }
            items[p] = cand;
        }
        items
    }
}
