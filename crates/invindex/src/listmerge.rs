//! ListMerge: merge of id-sorted, rank-augmented lists with on-the-fly
//! aggregation (paper Section 7, "Merge of Id-Sorted Lists with
//! Aggregation").
//!
//! Opening a cursor on each of the query's k postings lists, the algorithm
//! repeatedly finalizes the smallest ranking id across all cursors. Because
//! postings carry ranks, the exact Footrule distance follows from the
//! matched contributions alone:
//!
//! ```text
//! F = Σ_matched |τ(i) − q(i)|  +  (T(k) − Σ_matched (k − q(i)))
//!                              +  (T(k) − Σ_matched (k − τ(i)))
//! ```
//!
//! No bookkeeping survives across ids (one ranking in flight at a time),
//! no hash map, and no access to the ranking store: the algorithm is
//! threshold-agnostic — its cost is reading the k lists once, which is why
//! the paper's Figures 8/9 show it flat across θ.

use crate::augmented::AugmentedInvertedIndex;
use ranksim_rankings::{one_side_total, ItemId, QueryStats, RankingId, RankingStore};

/// ListMerge: returns all indexed rankings within `theta_raw` of the query.
pub fn list_merge(
    index: &AugmentedInvertedIndex,
    store: &RankingStore,
    query: &[ItemId],
    theta_raw: u32,
    stats: &mut QueryStats,
) -> Vec<RankingId> {
    debug_assert_eq!(index.k(), query.len());
    let k = store.k() as u32;
    let t_k = one_side_total(store.k());
    // Cursor per query position; lists are id-sorted.
    let lists: Vec<&[crate::augmented::Posting]> = query
        .iter()
        .map(|&item| {
            let l = index.list(item).unwrap_or(&[]);
            stats.count_list(l.len());
            l
        })
        .collect();
    let mut cursors = vec![0usize; lists.len()];
    let mut out = Vec::new();
    loop {
        // The next ranking to finalize: minimum id over cursor heads.
        let mut min_id: Option<RankingId> = None;
        for (li, &c) in cursors.iter().enumerate() {
            if let Some(p) = lists[li].get(c) {
                if min_id.map(|m| p.id < m).unwrap_or(true) {
                    min_id = Some(p.id);
                }
            }
        }
        let Some(id) = min_id else { break };
        // Aggregate every list whose head matches this id.
        let mut exact = 0u32;
        let mut q_side = 0u32;
        let mut tau_side = 0u32;
        for (li, cursor) in cursors.iter_mut().enumerate() {
            if let Some(p) = lists[li].get(*cursor) {
                if p.id == id {
                    let q_rank = li as u32;
                    exact += p.rank.abs_diff(q_rank);
                    q_side += k - q_rank;
                    tau_side += k - p.rank;
                    *cursor += 1;
                }
            }
        }
        let dist = exact + (t_k - q_side) + (t_k - tau_side);
        stats.candidates += 1;
        if dist <= theta_raw {
            out.push(id);
        }
    }
    stats.results += out.len() as u64;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_equals_scan, perturbed_query, random_store};
    use ranksim_rankings::raw_threshold;

    #[test]
    fn list_merge_equals_scan() {
        let store = random_store(300, 7, 60, 400);
        let index = AugmentedInvertedIndex::build(&store);
        for seed in 0..12u64 {
            let q = perturbed_query(&store, RankingId((seed * 17 % 300) as u32), 60, seed);
            for theta in [0.0, 0.1, 0.2, 0.3, 0.6] {
                let raw = raw_threshold(theta, 7);
                let mut stats = QueryStats::new();
                let got = list_merge(&index, &store, &q, raw, &mut stats);
                assert_equals_scan(&store, &q, raw, got);
            }
        }
    }

    #[test]
    fn list_merge_performs_no_distance_calls() {
        let store = random_store(200, 6, 40, 8);
        let index = AugmentedInvertedIndex::build(&store);
        let q = perturbed_query(&store, RankingId(3), 40, 1);
        let mut stats = QueryStats::new();
        let _ = list_merge(&index, &store, &q, 12, &mut stats);
        assert_eq!(stats.distance_calls, 0, "aggregation needs no DFC");
        assert_eq!(stats.lists_accessed, 6);
    }

    #[test]
    fn results_are_id_sorted() {
        let store = random_store(250, 6, 40, 12);
        let index = AugmentedInvertedIndex::build(&store);
        let q = perturbed_query(&store, RankingId(100), 40, 2);
        let mut stats = QueryStats::new();
        let got = list_merge(&index, &store, &q, 30, &mut stats);
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn candidates_counted_once_per_distinct_id() {
        // A ranking overlapping the query in m items appears in m lists but
        // must be aggregated exactly once.
        let mut store = RankingStore::new(4);
        store.push_items_unchecked(&[1, 2, 3, 4].map(ItemId));
        store.push_items_unchecked(&[1, 2, 3, 5].map(ItemId));
        store.push_items_unchecked(&[9, 8, 7, 6].map(ItemId));
        let index = AugmentedInvertedIndex::build(&store);
        let q: Vec<ItemId> = [1u32, 2, 3, 4].map(ItemId).to_vec();
        let mut stats = QueryStats::new();
        let got = list_merge(&index, &store, &q, 0, &mut stats);
        assert_eq!(got, vec![RankingId(0)]);
        assert_eq!(stats.candidates, 2, "τ0 and τ1 seen; τ2 never surfaces");
    }
}
