//! ListMerge: aggregation over id-sorted, rank-augmented lists (paper
//! Section 7, "Merge of Id-Sorted Lists with Aggregation").
//!
//! Because postings carry ranks, the exact Footrule distance of every
//! ranking appearing in at least one of the query's k postings lists
//! follows from the matched contributions alone:
//!
//! ```text
//! F = Σ_matched |τ(i) − q(i)|  +  (T(k) − Σ_matched (k − q(i)))
//!                              +  (T(k) − Σ_matched (k − τ(i)))
//! ```
//!
//! No distance-function call and no access to the ranking store: the
//! algorithm's cost is reading the k lists once, which is why the paper's
//! Figures 8/9 show it flat across θ.
//!
//! The paper realizes the aggregation as a k-way merge that finalizes one
//! ranking id at a time (no per-candidate state, but `O(k)` cursor-head
//! scans per distinct id). This implementation keeps the identical
//! aggregate but accumulates **item-at-a-time** into the epoch-versioned
//! cell map of the reusable [`QueryScratch`]: each posting is one O(1)
//! probe of a flat array, so the whole query costs `O(Σ list lengths)`
//! instead of `O(k · #distinct ids)` — the measured hot-path win recorded
//! in `BENCH_hotpath.json`. Like the merge, it uses no hash map, performs
//! zero distance calls, and never touches the store; results are emitted
//! id-sorted as before.

use crate::augmented::AugmentedInvertedIndex;
use crate::order::PostingOrder;
use ranksim_rankings::{one_side_total, ItemId, QueryScratch, QueryStats, RankingId, RankingStore};

/// ListMerge: returns all indexed rankings within `theta_raw` of the query.
pub fn list_merge(
    index: &AugmentedInvertedIndex,
    store: &RankingStore,
    query: &[ItemId],
    theta_raw: u32,
    stats: &mut QueryStats,
) -> Vec<RankingId> {
    let mut scratch = QueryScratch::new();
    let mut out = Vec::new();
    list_merge_into(
        index,
        store,
        query,
        theta_raw,
        &mut scratch,
        stats,
        &mut out,
    );
    out
}

/// Scratch-reusing ListMerge; appends results (id-ascending) to `out`.
///
/// On a [`PostingOrder::SuffixBound`] index the aggregation walks only
/// the `[q_rank − θ, q_rank + θ]` rank window of each list. Skipping a
/// posting `(id, rank)` with `|rank − q_rank| > θ` is sound: if it was
/// the candidate's only overlap, its true distance already exceeds θ
/// through that matched term alone; if the candidate has other in-window
/// overlaps, the finalization treats the skipped item as unmatched on
/// both sides, which *over*-estimates its contribution
/// (`(k − q_rank) + (k − rank) ≥ |rank − q_rank|`) — so the computed
/// distance is ≥ the true distance, which is itself `> θ`. Either way
/// the candidate fails the threshold exactly as it must. Skipped entries
/// land in `postings_skipped` rather than `entries_scanned`.
pub fn list_merge_into(
    index: &AugmentedInvertedIndex,
    store: &RankingStore,
    query: &[ItemId],
    theta_raw: u32,
    scratch: &mut QueryScratch,
    stats: &mut QueryStats,
    out: &mut Vec<RankingId>,
) {
    debug_assert_eq!(index.k(), query.len());
    let k = store.k() as u32;
    let t_k = one_side_total(store.k());
    let postings = index.postings();
    let ordered = index.order() == PostingOrder::SuffixBound;
    let QueryScratch { cells, .. } = scratch;
    // Aggregation phase: every posting books its exact, τ-side and q-side
    // contribution into the candidate's cell.
    cells.begin(store.len());
    for (q_rank, &item) in query.iter().enumerate() {
        let (start, end) = index.list_range(item);
        let q_rank = q_rank as u32;
        let mut list = &postings[start as usize..end as usize];
        if ordered {
            let lo = q_rank.saturating_sub(theta_raw);
            let hi = q_rank.saturating_add(theta_raw);
            let s = list.partition_point(|p| p.rank < lo);
            let e = s + list[s..].partition_point(|p| p.rank <= hi);
            stats.postings_skipped += (list.len() - (e - s)) as u64;
            list = &list[s..e];
        }
        stats.count_list(list.len());
        for p in list {
            let c = cells.probe(p.id.0);
            c[0] += p.rank.abs_diff(q_rank);
            c[1] += k - p.rank;
            c[2] += k - q_rank;
        }
    }
    // Finalization: one O(1) distance completion per distinct candidate.
    stats.candidates += cells.len() as u64;
    let out_start = out.len();
    for &id in cells.keys() {
        let c = cells.get(id).expect("aggregated candidate");
        let dist = c[0] + (t_k - c[2]) + (t_k - c[1]);
        if dist <= theta_raw {
            out.push(RankingId(id));
        }
    }
    // Keys surface in first-occurrence order across lists; restore the
    // id-sorted result order of the merge formulation.
    out[out_start..].sort_unstable();
    stats.results += (out.len() - out_start) as u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_equals_scan, perturbed_query, random_store};
    use ranksim_rankings::raw_threshold;

    #[test]
    fn list_merge_equals_scan() {
        let store = random_store(300, 7, 60, 400);
        let index = AugmentedInvertedIndex::build(&store);
        for seed in 0..12u64 {
            let q = perturbed_query(&store, RankingId((seed * 17 % 300) as u32), 60, seed);
            for theta in [0.0, 0.1, 0.2, 0.3, 0.6] {
                let raw = raw_threshold(theta, 7);
                let mut stats = QueryStats::new();
                let got = list_merge(&index, &store, &q, raw, &mut stats);
                assert_equals_scan(&store, &q, raw, got);
            }
        }
    }

    #[test]
    fn shared_scratch_merge_equals_fresh_scratch() {
        let store = random_store(260, 6, 45, 401);
        let index = AugmentedInvertedIndex::build(&store);
        let mut shared = QueryScratch::new();
        for seed in 0..15u64 {
            let q = perturbed_query(&store, RankingId((seed * 19 % 260) as u32), 45, seed);
            let raw = raw_threshold(0.1 * (seed % 4) as f64, 6);
            let mut s1 = QueryStats::new();
            let mut s2 = QueryStats::new();
            let mut got = Vec::new();
            list_merge_into(&index, &store, &q, raw, &mut shared, &mut s1, &mut got);
            let expect = list_merge(&index, &store, &q, raw, &mut s2);
            assert_eq!(got, expect, "seed {seed}");
            assert_eq!(s1, s2);
        }
    }

    #[test]
    fn list_merge_performs_no_distance_calls() {
        let store = random_store(200, 6, 40, 8);
        let index = AugmentedInvertedIndex::build(&store);
        let q = perturbed_query(&store, RankingId(3), 40, 1);
        let mut stats = QueryStats::new();
        let _ = list_merge(&index, &store, &q, 12, &mut stats);
        assert_eq!(stats.distance_calls, 0, "aggregation needs no DFC");
        assert_eq!(stats.lists_accessed, 6);
    }

    #[test]
    fn results_are_id_sorted() {
        let store = random_store(250, 6, 40, 12);
        let index = AugmentedInvertedIndex::build(&store);
        let q = perturbed_query(&store, RankingId(100), 40, 2);
        let mut stats = QueryStats::new();
        let got = list_merge(&index, &store, &q, 30, &mut stats);
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn suffix_bound_merge_equals_id_sorted_merge() {
        use ranksim_rankings::ItemRemap;
        use std::sync::Arc;
        let store = random_store(400, 8, 70, 402);
        let remap = Arc::new(ItemRemap::build(&store));
        let id_idx =
            AugmentedInvertedIndex::build_with_remap(&store, remap.clone(), store.live_ids());
        let sb_idx = AugmentedInvertedIndex::build_with_remap_ordered(
            &store,
            remap,
            store.live_ids(),
            PostingOrder::SuffixBound,
        );
        let mut skipped_any = false;
        for seed in 0..10u64 {
            let q = perturbed_query(&store, RankingId((seed * 37 % 400) as u32), 70, seed);
            for theta in [0.0, 0.05, 0.15, 0.3, 0.8] {
                let raw = raw_threshold(theta, 8);
                let mut s_id = QueryStats::new();
                let mut s_sb = QueryStats::new();
                let a = list_merge(&id_idx, &store, &q, raw, &mut s_id);
                let b = list_merge(&sb_idx, &store, &q, raw, &mut s_sb);
                assert_eq!(a, b, "seed {seed} θ {theta}");
                assert_eq!(
                    s_sb.entries_scanned + s_sb.postings_skipped,
                    s_id.entries_scanned,
                    "windowing partitions the scan"
                );
                skipped_any |= s_sb.postings_skipped > 0;
            }
        }
        assert!(skipped_any, "tight thresholds must exercise the window");
    }

    #[test]
    fn candidates_counted_once_per_distinct_id() {
        // A ranking overlapping the query in m items appears in m lists but
        // must be aggregated exactly once.
        let mut store = RankingStore::new(4);
        store.push_items_unchecked(&[1, 2, 3, 4].map(ItemId));
        store.push_items_unchecked(&[1, 2, 3, 5].map(ItemId));
        store.push_items_unchecked(&[9, 8, 7, 6].map(ItemId));
        let index = AugmentedInvertedIndex::build(&store);
        let q: Vec<ItemId> = [1u32, 2, 3, 4].map(ItemId).to_vec();
        let mut stats = QueryStats::new();
        let got = list_merge(&index, &store, &q, 0, &mut stats);
        assert_eq!(got, vec![RankingId(0)]);
        assert_eq!(stats.candidates, 2, "τ0 and τ1 seen; τ2 never surfaces");
    }
}
