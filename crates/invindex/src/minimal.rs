//! Minimal F&V: the per-query lower-bound oracle (paper Section 7).
//!
//! For each workload query the index materializes a single postings list
//! containing *exactly* the true result rankings. Query processing is then
//! one list lookup plus one Footrule evaluation per member — the cheapest
//! conceivable filter-and-validate execution. Its runtime lower-bounds
//! every algorithm under study; it is not a real index (it requires the
//! workload at build time).

use ranksim_rankings::{ItemId, PositionMap, QueryStats, RankingId, RankingStore};

/// The materialized per-query oracle.
#[derive(Debug, Clone)]
pub struct MinimalFv {
    lists: Vec<Vec<RankingId>>,
}

impl MinimalFv {
    /// Materializes the true result list of every `(query, θ_raw)` pair by
    /// brute force (build cost is irrelevant: only query time is measured).
    pub fn build(store: &RankingStore, workload: &[(Vec<ItemId>, u32)]) -> Self {
        let lists = workload
            .iter()
            .map(|(query, theta_raw)| {
                let qmap = PositionMap::new(query);
                store
                    .live_ids()
                    .filter(|&id| qmap.distance_to(store.items(id)) <= *theta_raw)
                    .collect()
            })
            .collect();
        MinimalFv { lists }
    }

    /// Number of materialized queries.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// Whether no query was materialized.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// Executes workload query `qi`: reads its list and validates each
    /// member with one distance call (mirroring what a real F&V run would
    /// minimally have to do).
    pub fn query(
        &self,
        store: &RankingStore,
        qi: usize,
        query: &[ItemId],
        theta_raw: u32,
        stats: &mut QueryStats,
    ) -> Vec<RankingId> {
        let list = &self.lists[qi];
        stats.count_list(list.len());
        stats.candidates += list.len() as u64;
        let qmap = PositionMap::new(query);
        let mut out = Vec::with_capacity(list.len());
        for &id in list {
            stats.count_distance();
            if qmap.distance_to(store.items(id)) <= theta_raw {
                out.push(id);
            }
        }
        stats.results += out.len() as u64;
        out
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.lists.capacity() * std::mem::size_of::<Vec<RankingId>>()
            + self
                .lists
                .iter()
                .map(|l| l.capacity() * std::mem::size_of::<RankingId>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{perturbed_query, random_store, scan};

    #[test]
    fn oracle_returns_exact_results() {
        let store = random_store(200, 6, 50, 42);
        let workload: Vec<(Vec<ItemId>, u32)> = (0..10u64)
            .map(|s| {
                let q = perturbed_query(&store, RankingId((s * 11 % 200) as u32), 50, s);
                (q, 16u32)
            })
            .collect();
        let oracle = MinimalFv::build(&store, &workload);
        assert_eq!(oracle.len(), 10);
        for (qi, (q, theta)) in workload.iter().enumerate() {
            let mut stats = QueryStats::new();
            let mut got = oracle.query(&store, qi, q, *theta, &mut stats);
            let mut expect = scan(&store, q, *theta);
            got.sort_unstable();
            expect.sort_unstable();
            assert_eq!(got, expect);
            // DFC equals result size exactly: the defining property.
            assert_eq!(stats.distance_calls, expect.len() as u64);
        }
    }
}
