//! Posting-list entry ordering for the CSR index layouts.
//!
//! The classic layouts keep each item's postings **id-sorted** — natural
//! for merging, and what the paper's Section 4/6.2 figures show. The
//! suffix-bound ordering instead sorts each per-item slice by the rank
//! the item holds in the posting's ranking (ties by id): since a shared
//! item at candidate rank `r` contributes at least `|r − q_p|` to the
//! Footrule distance, a rank-sorted list lets a scan binary-search to the
//! first entry with `r ≥ q_p − θ` and stop at the first entry with
//! `r > q_p + θ` — every entry outside that window belongs to a ranking
//! whose distance through this item alone already exceeds θ. Both
//! orderings index the same postings; result sets are bit-identical
//! (window-skipped candidates are provably outside θ, and ListMerge's
//! finalization over-estimates skipped contributions, see
//! `crate::listmerge`). Only the scan counters differ.

use std::fmt;
use std::str::FromStr;

/// Build-time ordering of each item's postings slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PostingOrder {
    /// Ascending ranking id (the classic layout; the default).
    #[default]
    Id,
    /// Ascending `(rank, id)` — enables threshold-window scans with a
    /// binary-searched head skip and an early tail break.
    SuffixBound,
}

impl fmt::Display for PostingOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PostingOrder::Id => "id",
            PostingOrder::SuffixBound => "suffix-bound",
        })
    }
}

/// Error for unknown posting-order names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePostingOrderError(pub String);

impl fmt::Display for ParsePostingOrderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown posting order '{}' (expected id|suffix-bound)",
            self.0
        )
    }
}

impl std::error::Error for ParsePostingOrderError {}

impl FromStr for PostingOrder {
    type Err = ParsePostingOrderError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "id" => Ok(PostingOrder::Id),
            "suffix-bound" | "suffixbound" | "suffix_bound" => Ok(PostingOrder::SuffixBound),
            _ => Err(ParsePostingOrderError(s.trim().to_string())),
        }
    }
}

impl PostingOrder {
    /// Stable persistence tag (`0` = id, `1` = suffix-bound).
    #[doc(hidden)]
    pub fn to_tag(self) -> u32 {
        match self {
            PostingOrder::Id => 0,
            PostingOrder::SuffixBound => 1,
        }
    }

    /// Inverse of [`PostingOrder::to_tag`].
    #[doc(hidden)]
    pub fn from_tag(tag: u32) -> Result<Self, String> {
        match tag {
            0 => Ok(PostingOrder::Id),
            1 => Ok(PostingOrder::SuffixBound),
            _ => Err(format!("unknown posting-order tag {tag}")),
        }
    }
}

/// The `[start, end)` sub-range of a rank-sorted slice whose ranks fall
/// inside the window `[q_rank − theta, q_rank + theta]`, found with two
/// binary searches over `ranks`.
#[doc(hidden)]
#[inline]
pub fn rank_window(ranks: &[u32], q_rank: u32, theta_raw: u32) -> (usize, usize) {
    let lo = q_rank.saturating_sub(theta_raw);
    let hi = q_rank.saturating_add(theta_raw);
    let start = ranks.partition_point(|&r| r < lo);
    let end = start + ranks[start..].partition_point(|&r| r <= hi);
    (start, end)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_displays() {
        assert_eq!("id".parse::<PostingOrder>().unwrap(), PostingOrder::Id);
        assert_eq!(
            " Suffix-Bound ".parse::<PostingOrder>().unwrap(),
            PostingOrder::SuffixBound
        );
        assert!("rank".parse::<PostingOrder>().is_err());
        assert_eq!(PostingOrder::SuffixBound.to_string(), "suffix-bound");
        assert_eq!(PostingOrder::default(), PostingOrder::Id);
    }

    #[test]
    fn tags_round_trip() {
        for o in [PostingOrder::Id, PostingOrder::SuffixBound] {
            assert_eq!(PostingOrder::from_tag(o.to_tag()).unwrap(), o);
        }
        assert!(PostingOrder::from_tag(7).is_err());
    }

    #[test]
    fn rank_window_brackets_the_threshold_band() {
        let ranks = [0u32, 1, 1, 3, 4, 4, 4, 7, 9];
        let (s, e) = rank_window(&ranks, 4, 2);
        assert_eq!(&ranks[s..e], &[3, 4, 4, 4]);
        let (s, e) = rank_window(&ranks, 0, 1);
        assert_eq!(&ranks[s..e], &[0, 1, 1]);
        let (s, e) = rank_window(&ranks, 20, 3);
        assert_eq!(s, e, "window past the tail is empty");
        let (s, e) = rank_window(&ranks, 5, 100);
        assert_eq!((s, e), (0, ranks.len()), "huge θ covers everything");
        let (s, e) = rank_window(&[], 3, 1);
        assert_eq!((s, e), (0, 0));
    }
}
