//! Plain inverted index: item → id-sorted list of rankings containing it.
//!
//! Postings live in a compressed-sparse-row (CSR) layout: a shared
//! [`ItemRemap`] turns an item id into a dense coordinate, `offsets`
//! addresses that item's slice of one contiguous `postings` array. A query
//! item's list is therefore two loads and a slice — no hash probe, no
//! per-item heap allocation.

use std::sync::Arc;

use crate::order::PostingOrder;
use ranksim_rankings::{ItemId, ItemRemap, RankingId, RankingStore};

/// The classic set-valued-attribute inverted index (paper Section 4).
///
/// Postings carry no rank information; the validation phase must fetch the
/// ranking content from the [`RankingStore`] to evaluate distances.
#[derive(Debug, Clone)]
pub struct PlainInvertedIndex {
    k: usize,
    remap: Arc<ItemRemap>,
    /// `offsets[d]..offsets[d + 1]` is the postings slice of dense item `d`.
    offsets: Vec<u32>,
    /// All postings, item-major, ordered per `order` within each item.
    postings: Vec<RankingId>,
    /// Parallel per-posting rank plane; **empty** under
    /// [`PostingOrder::Id`] (the classic layout pays nothing for the
    /// feature), same length as `postings` under
    /// [`PostingOrder::SuffixBound`].
    ranks: Vec<u32>,
    order: PostingOrder,
    indexed: usize,
    num_items: usize,
}

impl PlainInvertedIndex {
    /// Indexes every ranking of the store.
    pub fn build(store: &RankingStore) -> Self {
        Self::build_with_remap(store, Arc::new(ItemRemap::build(store)), store.live_ids())
    }

    /// Indexes a subset of rankings. Ids must be supplied in ascending
    /// order so that postings lists stay id-sorted.
    pub fn build_from<I: IntoIterator<Item = RankingId>>(store: &RankingStore, ids: I) -> Self {
        Self::build_with_remap(store, Arc::new(ItemRemap::build(store)), ids)
    }

    /// Indexes a subset of rankings against a shared corpus remap (ids in
    /// ascending order). The engine builds one remap per corpus and shares
    /// it across all index structures; items the remap does not cover get
    /// no posting (the ranking stays findable through its mapped items),
    /// so a partial remap degrades results instead of panicking.
    pub fn build_with_remap<I: IntoIterator<Item = RankingId>>(
        store: &RankingStore,
        remap: Arc<ItemRemap>,
        ids: I,
    ) -> Self {
        Self::build_with_remap_ordered(store, remap, ids, PostingOrder::Id)
    }

    /// [`PlainInvertedIndex::build_with_remap`] with an explicit posting
    /// ordering. [`PostingOrder::SuffixBound`] additionally materializes a
    /// parallel per-posting rank plane and sorts each item's slice by
    /// `(rank, id)`, enabling threshold-window scans; the indexed content
    /// is identical either way.
    pub fn build_with_remap_ordered<I: IntoIterator<Item = RankingId>>(
        store: &RankingStore,
        remap: Arc<ItemRemap>,
        ids: I,
        order: PostingOrder,
    ) -> Self {
        let ids: Vec<RankingId> = ids.into_iter().collect();
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must ascend");
        let m = remap.len();
        // Counting sort over dense item ids; iterating `ids` in ascending
        // order keeps every per-item slice id-sorted.
        let mut offsets = vec![0u32; m + 1];
        for &id in &ids {
            for &item in store.items(id) {
                // An item absent from the remap simply gets no posting:
                // the ranking stays findable through its mapped items and
                // the query side already treats unmapped items as empty
                // lists, so a partial remap degrades instead of aborting.
                let Some(d) = remap.dense(item) else { continue };
                offsets[d as usize + 1] += 1;
            }
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let total = *offsets.last().unwrap_or(&0) as usize;
        let mut cursors: Vec<u32> = offsets[..m].to_vec();
        let mut postings = vec![RankingId(0); total];
        let mut ranks = if order == PostingOrder::SuffixBound {
            vec![0u32; total]
        } else {
            Vec::new()
        };
        for &id in &ids {
            for (rank, &item) in store.items(id).iter().enumerate() {
                // Must skip exactly the items the counting pass skipped.
                let Some(d) = remap.dense(item) else { continue };
                let d = d as usize;
                let c = cursors[d] as usize;
                postings[c] = id;
                if order == PostingOrder::SuffixBound {
                    ranks[c] = rank as u32;
                }
                cursors[d] += 1;
            }
        }
        if order == PostingOrder::SuffixBound {
            // Re-sort each item's slice by (rank, id). Iterating `ids`
            // ascending made every slice id-sorted, so sorting the zipped
            // pairs is a stable re-keying; ties on rank stay id-sorted.
            let mut tmp: Vec<(u32, RankingId)> = Vec::new();
            for d in 0..m {
                let (s, e) = (offsets[d] as usize, offsets[d + 1] as usize);
                tmp.clear();
                tmp.extend(
                    ranks[s..e]
                        .iter()
                        .copied()
                        .zip(postings[s..e].iter().copied()),
                );
                tmp.sort_unstable();
                for (i, &(r, id)) in tmp.iter().enumerate() {
                    ranks[s + i] = r;
                    postings[s + i] = id;
                }
            }
        }
        let num_items = (0..m).filter(|&d| offsets[d] < offsets[d + 1]).count();
        PlainInvertedIndex {
            k: store.k(),
            remap,
            offsets,
            postings,
            ranks,
            order,
            indexed: ids.len(),
            num_items,
        }
    }

    /// The ranking size the index was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of rankings indexed.
    pub fn indexed(&self) -> usize {
        self.indexed
    }

    /// Number of distinct items with at least one posting.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// The shared item remap backing the CSR layout.
    #[inline]
    pub fn remap(&self) -> &Arc<ItemRemap> {
        &self.remap
    }

    /// The per-item entry ordering this index was built with.
    #[inline]
    pub fn order(&self) -> PostingOrder {
        self.order
    }

    /// The postings list for `item` (ordered per [`Self::order`]); `None`
    /// if the item is not in the corpus remap (the slice may be empty for
    /// subset builds).
    #[inline]
    pub fn list(&self, item: ItemId) -> Option<&[RankingId]> {
        let d = self.remap.dense(item)? as usize;
        Some(&self.postings[self.offsets[d] as usize..self.offsets[d + 1] as usize])
    }

    /// The postings list of `item` together with its parallel rank plane.
    /// Only meaningful under [`PostingOrder::SuffixBound`] (the plane is
    /// empty otherwise, and the returned slices disagree in length).
    #[inline]
    pub fn list_with_ranks(&self, item: ItemId) -> Option<(&[RankingId], &[u32])> {
        debug_assert_eq!(self.order, PostingOrder::SuffixBound);
        let d = self.remap.dense(item)? as usize;
        let (s, e) = (self.offsets[d] as usize, self.offsets[d + 1] as usize);
        Some((&self.postings[s..e], &self.ranks[s..e]))
    }

    /// Length of the postings list for `item` (0 if absent).
    #[inline]
    pub fn list_len(&self, item: ItemId) -> usize {
        self.list(item).map(|l| l.len()).unwrap_or(0)
    }

    /// Mean postings-list length over all items with postings.
    pub fn avg_list_len(&self) -> f64 {
        if self.num_items == 0 {
            return 0.0;
        }
        self.postings.len() as f64 / self.num_items as f64
    }

    /// Exact heap footprint in bytes (Table 6 reporting): the index header,
    /// the two CSR arrays, and the item remap (shared remaps are counted in
    /// every index holding them).
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.postings.capacity() * std::mem::size_of::<RankingId>()
            + self.ranks.capacity() * std::mem::size_of::<u32>()
            + self.remap.heap_bytes()
    }

    /// Decomposes the index into its flat persistence form (the shared
    /// remap is persisted once by the engine, not per index).
    #[doc(hidden)]
    pub fn export_parts(&self) -> PlainIndexParts {
        PlainIndexParts {
            k: self.k as u32,
            indexed: self.indexed as u32,
            order: self.order,
            offsets: self.offsets.clone(),
            postings: ranksim_rankings::ranking_vec_into_u32(self.postings.clone()),
            ranks: self.ranks.clone(),
        }
    }

    /// Rebuilds the index from its flat persistence form against the
    /// corpus remap, validating the CSR invariants (monotone offsets
    /// covering the postings arena, one offsets row per dense item).
    #[doc(hidden)]
    pub fn from_parts(parts: PlainIndexParts, remap: Arc<ItemRemap>) -> Result<Self, String> {
        validate_csr(&parts.offsets, parts.postings.len(), remap.len())?;
        match parts.order {
            PostingOrder::Id => {
                if !parts.ranks.is_empty() {
                    return Err("id-ordered plain index must have an empty rank plane".into());
                }
            }
            PostingOrder::SuffixBound => {
                if parts.ranks.len() != parts.postings.len() {
                    return Err("plain index rank plane disagrees with postings".into());
                }
                let k = (parts.k as usize).max(1);
                if let Some(bad) = parts.ranks.iter().find(|&&r| r as usize >= k) {
                    return Err(format!(
                        "posting rank {bad} out of bounds for k {}",
                        parts.k
                    ));
                }
                // Ordering is validated, never repaired: a re-sort on load
                // would mask corruption and break zero-copy expectations.
                validate_rank_sorted(&parts.offsets, &parts.ranks, &parts.postings)?;
            }
        }
        let m = remap.len();
        let num_items = (0..m)
            .filter(|&d| parts.offsets[d] < parts.offsets[d + 1])
            .count();
        Ok(PlainInvertedIndex {
            k: parts.k as usize,
            remap,
            offsets: parts.offsets,
            postings: ranksim_rankings::ranking_vec_from_u32(parts.postings),
            ranks: parts.ranks,
            order: parts.order,
            indexed: parts.indexed as usize,
            num_items,
        })
    }
}

/// Flat persistence form of a [`PlainInvertedIndex`].
#[doc(hidden)]
#[derive(Debug, Clone)]
pub struct PlainIndexParts {
    pub k: u32,
    pub indexed: u32,
    pub order: PostingOrder,
    pub offsets: Vec<u32>,
    pub postings: Vec<u32>,
    pub ranks: Vec<u32>,
}

/// Validates that every per-item slice is sorted ascending by
/// `(rank, id)` — the suffix-bound layout invariant. Works for any CSR
/// offsets array over parallel rank/id planes (the adaptsearch delta
/// index reuses it with its strided prefix-position offsets).
#[doc(hidden)]
pub fn validate_rank_sorted(offsets: &[u32], ranks: &[u32], ids: &[u32]) -> Result<(), String> {
    for d in 0..offsets.len().saturating_sub(1) {
        let (s, e) = (offsets[d] as usize, offsets[d + 1] as usize);
        for i in s + 1..e {
            if (ranks[i - 1], ids[i - 1]) >= (ranks[i], ids[i]) {
                return Err(format!(
                    "postings of dense item {d} not (rank, id)-sorted at entry {i}"
                ));
            }
        }
    }
    Ok(())
}

/// Validates a CSR offsets array: `m + 1` monotone entries whose last
/// offset covers the arena exactly.
pub(crate) fn validate_csr(offsets: &[u32], arena_len: usize, m: usize) -> Result<(), String> {
    if offsets.len() != m + 1 {
        return Err(format!(
            "CSR offsets length {} != remap size {} + 1",
            offsets.len(),
            m
        ));
    }
    if offsets.first().copied().unwrap_or(0) != 0 {
        return Err("CSR offsets must start at 0".into());
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err("CSR offsets not monotone".into());
    }
    let end = offsets.last().copied().unwrap_or(0) as usize;
    if end != arena_len {
        return Err(format!(
            "CSR offsets end {end} != postings arena length {arena_len}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_store;

    #[test]
    fn lists_are_id_sorted_and_complete() {
        let store = random_store(200, 6, 50, 1);
        let idx = PlainInvertedIndex::build(&store);
        assert_eq!(idx.indexed(), 200);
        let mut postings = 0usize;
        for item in 0..50u32 {
            if let Some(list) = idx.list(ItemId(item)) {
                assert!(list.windows(2).all(|w| w[0] < w[1]), "unsorted list");
                for &id in list {
                    assert!(store.items(id).contains(&ItemId(item)));
                }
                postings += list.len();
            }
        }
        assert_eq!(postings, 200 * 6, "every (ranking, item) pair indexed once");
    }

    #[test]
    fn subset_build_only_covers_subset() {
        let store = random_store(100, 5, 40, 2);
        let subset: Vec<RankingId> = store.ids().filter(|id| id.0 % 3 == 0).collect();
        let idx = PlainInvertedIndex::build_from(&store, subset.iter().copied());
        assert_eq!(idx.indexed(), subset.len());
        for item in 0..40u32 {
            if let Some(list) = idx.list(ItemId(item)) {
                for &id in list {
                    assert_eq!(id.0 % 3, 0);
                }
            }
        }
    }

    #[test]
    fn partial_remap_degrades_to_empty_postings() {
        let mut store = RankingStore::new(3);
        store.push_items_unchecked(&[1, 2, 3].map(ItemId));
        store.push_items_unchecked(&[2, 3, 4].map(ItemId));
        // The remap deliberately misses items 3 and 4: those items get
        // no posting, everything else indexes normally — no panic.
        let remap = Arc::new(ItemRemap::from_raw_ids(vec![1, 2]));
        let idx = PlainInvertedIndex::build_with_remap(&store, remap, store.live_ids());
        assert_eq!(idx.indexed(), 2);
        assert_eq!(idx.list(ItemId(1)).unwrap(), &[RankingId(0)]);
        assert_eq!(idx.list(ItemId(2)).unwrap(), &[RankingId(0), RankingId(1)]);
        assert_eq!(idx.list(ItemId(3)), None);
        assert_eq!(idx.list_len(ItemId(4)), 0);
    }

    #[test]
    fn avg_list_len_matches_hand_count() {
        let mut store = RankingStore::new(2);
        store.push_items_unchecked(&[1, 2].map(ItemId));
        store.push_items_unchecked(&[1, 3].map(ItemId));
        store.push_items_unchecked(&[1, 4].map(ItemId));
        let idx = PlainInvertedIndex::build(&store);
        // lists: 1→3 entries, 2→1, 3→1, 4→1 ⇒ avg 6/4.
        assert_eq!(idx.num_items(), 4);
        assert!((idx.avg_list_len() - 1.5).abs() < 1e-12);
        assert_eq!(idx.list_len(ItemId(1)), 3);
        assert_eq!(idx.list_len(ItemId(99)), 0);
    }

    #[test]
    fn ordered_build_indexes_the_same_postings_rank_sorted() {
        let store = random_store(200, 6, 50, 1);
        let id_idx = PlainInvertedIndex::build(&store);
        let sb_idx = PlainInvertedIndex::build_with_remap_ordered(
            &store,
            Arc::new(ItemRemap::build(&store)),
            store.live_ids(),
            PostingOrder::SuffixBound,
        );
        assert_eq!(sb_idx.order(), PostingOrder::SuffixBound);
        assert_eq!(id_idx.order(), PostingOrder::Id);
        for item in 0..50u32 {
            let (ids, ranks) = match sb_idx.list_with_ranks(ItemId(item)) {
                Some(lr) => lr,
                None => continue,
            };
            assert_eq!(ids.len(), ranks.len());
            // Slices are (rank, id)-sorted and the rank plane is truthful.
            for i in 1..ids.len() {
                assert!((ranks[i - 1], ids[i - 1]) < (ranks[i], ids[i]));
            }
            for (i, &id) in ids.iter().enumerate() {
                assert_eq!(store.items(id)[ranks[i] as usize], ItemId(item));
            }
            // Same posting multiset as the id-ordered build.
            let mut a: Vec<RankingId> = ids.to_vec();
            a.sort_unstable();
            assert_eq!(a, id_idx.list(ItemId(item)).unwrap());
        }
        // Round-trips through parts without re-sorting.
        let rt =
            PlainInvertedIndex::from_parts(sb_idx.export_parts(), sb_idx.remap().clone()).unwrap();
        assert_eq!(rt.order(), PostingOrder::SuffixBound);
        assert_eq!(
            rt.list_with_ranks(ItemId(3)),
            sb_idx.list_with_ranks(ItemId(3))
        );
    }

    #[test]
    fn from_parts_rejects_unsorted_or_mismatched_rank_planes() {
        let mut store = RankingStore::new(3);
        store.push_items_unchecked(&[1, 2, 3].map(ItemId));
        store.push_items_unchecked(&[3, 2, 1].map(ItemId));
        let remap = Arc::new(ItemRemap::build(&store));
        let idx = PlainInvertedIndex::build_with_remap_ordered(
            &store,
            remap.clone(),
            store.live_ids(),
            PostingOrder::SuffixBound,
        );
        // Item 2 sits at rank 1 in both rankings: ties break by id.
        let (ids2, ranks2) = idx.list_with_ranks(ItemId(2)).unwrap();
        assert_eq!(ranks2, &[1, 1]);
        assert_eq!(ids2, &[RankingId(0), RankingId(1)]);
        // Unsorted plane → rejected, never re-sorted on load.
        let mut bad = idx.export_parts();
        bad.ranks.swap(0, 1);
        bad.postings.swap(0, 1);
        assert!(PlainInvertedIndex::from_parts(bad, remap.clone()).is_err());
        // Plane length disagreement → rejected.
        let mut short = idx.export_parts();
        short.ranks.pop();
        assert!(PlainInvertedIndex::from_parts(short, remap.clone()).is_err());
        // Id-ordered parts must not carry a plane.
        let mut spurious =
            PlainInvertedIndex::build_with_remap(&store, remap.clone(), store.live_ids())
                .export_parts();
        spurious.ranks = vec![0; spurious.postings.len()];
        assert!(PlainInvertedIndex::from_parts(spurious, remap).is_err());
    }

    #[test]
    fn heap_bytes_is_exact() {
        let mut store = RankingStore::new(3);
        store.push_items_unchecked(&[1, 2, 3].map(ItemId));
        store.push_items_unchecked(&[2, 3, 4].map(ItemId));
        let idx = PlainInvertedIndex::build(&store);
        // 4 distinct items → 5 offsets; 2 rankings × k=3 → 6 postings; the
        // build sizes both arrays exactly, so capacity == len.
        let expected = std::mem::size_of::<PlainInvertedIndex>()
            + 5 * std::mem::size_of::<u32>()
            + 6 * std::mem::size_of::<RankingId>()
            + idx.remap().heap_bytes();
        assert_eq!(idx.heap_bytes(), expected);
    }
}
