//! Plain inverted index: item → id-sorted list of rankings containing it.

use ranksim_rankings::hash::{fx_map_with_capacity, FxHashMap};
use ranksim_rankings::{ItemId, RankingId, RankingStore};

/// The classic set-valued-attribute inverted index (paper Section 4).
///
/// Postings carry no rank information; the validation phase must fetch the
/// ranking content from the [`RankingStore`] to evaluate distances.
#[derive(Debug, Clone)]
pub struct PlainInvertedIndex {
    k: usize,
    lists: FxHashMap<ItemId, Vec<RankingId>>,
    indexed: usize,
}

impl PlainInvertedIndex {
    /// Indexes every ranking of the store.
    pub fn build(store: &RankingStore) -> Self {
        Self::build_from(store, store.ids())
    }

    /// Indexes a subset of rankings. Ids must be supplied in ascending
    /// order so that postings lists stay id-sorted.
    pub fn build_from<I: IntoIterator<Item = RankingId>>(store: &RankingStore, ids: I) -> Self {
        let mut lists: FxHashMap<ItemId, Vec<RankingId>> = fx_map_with_capacity(1024);
        let mut indexed = 0usize;
        let mut prev: Option<RankingId> = None;
        for id in ids {
            debug_assert!(prev.map(|p| p < id).unwrap_or(true), "ids must ascend");
            prev = Some(id);
            indexed += 1;
            for &item in store.items(id) {
                lists.entry(item).or_default().push(id);
            }
        }
        PlainInvertedIndex {
            k: store.k(),
            lists,
            indexed,
        }
    }

    /// The ranking size the index was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of rankings indexed.
    pub fn indexed(&self) -> usize {
        self.indexed
    }

    /// Number of distinct items (= number of index lists).
    pub fn num_items(&self) -> usize {
        self.lists.len()
    }

    /// The postings list for `item` (id-sorted), if any.
    #[inline]
    pub fn list(&self, item: ItemId) -> Option<&[RankingId]> {
        self.lists.get(&item).map(|v| v.as_slice())
    }

    /// Length of the postings list for `item` (0 if absent).
    #[inline]
    pub fn list_len(&self, item: ItemId) -> usize {
        self.lists.get(&item).map(|v| v.len()).unwrap_or(0)
    }

    /// Mean postings-list length over all items.
    pub fn avg_list_len(&self) -> f64 {
        if self.lists.is_empty() {
            return 0.0;
        }
        let total: usize = self.lists.values().map(|v| v.len()).sum();
        total as f64 / self.lists.len() as f64
    }

    /// Approximate heap footprint in bytes (Table 6 reporting).
    pub fn heap_bytes(&self) -> usize {
        let buckets = self.lists.capacity()
            * (std::mem::size_of::<ItemId>() + std::mem::size_of::<Vec<RankingId>>());
        let postings: usize = self
            .lists
            .values()
            .map(|v| v.capacity() * std::mem::size_of::<RankingId>())
            .sum();
        buckets + postings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_store;

    #[test]
    fn lists_are_id_sorted_and_complete() {
        let store = random_store(200, 6, 50, 1);
        let idx = PlainInvertedIndex::build(&store);
        assert_eq!(idx.indexed(), 200);
        let mut postings = 0usize;
        for item in 0..50u32 {
            if let Some(list) = idx.list(ItemId(item)) {
                assert!(list.windows(2).all(|w| w[0] < w[1]), "unsorted list");
                for &id in list {
                    assert!(store.items(id).contains(&ItemId(item)));
                }
                postings += list.len();
            }
        }
        assert_eq!(postings, 200 * 6, "every (ranking, item) pair indexed once");
    }

    #[test]
    fn subset_build_only_covers_subset() {
        let store = random_store(100, 5, 40, 2);
        let subset: Vec<RankingId> = store.ids().filter(|id| id.0 % 3 == 0).collect();
        let idx = PlainInvertedIndex::build_from(&store, subset.iter().copied());
        assert_eq!(idx.indexed(), subset.len());
        for item in 0..40u32 {
            if let Some(list) = idx.list(ItemId(item)) {
                for &id in list {
                    assert_eq!(id.0 % 3, 0);
                }
            }
        }
    }

    #[test]
    fn avg_list_len_matches_hand_count() {
        let mut store = RankingStore::new(2);
        store.push_items_unchecked(&[1, 2].map(ItemId));
        store.push_items_unchecked(&[1, 3].map(ItemId));
        store.push_items_unchecked(&[1, 4].map(ItemId));
        let idx = PlainInvertedIndex::build(&store);
        // lists: 1→3 entries, 2→1, 3→1, 4→1 ⇒ avg 6/4.
        assert_eq!(idx.num_items(), 4);
        assert!((idx.avg_list_len() - 1.5).abs() < 1e-12);
        assert_eq!(idx.list_len(ItemId(1)), 3);
        assert_eq!(idx.list_len(ItemId(99)), 0);
    }
}
