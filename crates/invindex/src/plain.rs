//! Plain inverted index: item → id-sorted list of rankings containing it.
//!
//! Postings live in a compressed-sparse-row (CSR) layout: a shared
//! [`ItemRemap`] turns an item id into a dense coordinate, `offsets`
//! addresses that item's slice of one contiguous `postings` array. A query
//! item's list is therefore two loads and a slice — no hash probe, no
//! per-item heap allocation.

use std::sync::Arc;

use ranksim_rankings::{ItemId, ItemRemap, RankingId, RankingStore};

/// The classic set-valued-attribute inverted index (paper Section 4).
///
/// Postings carry no rank information; the validation phase must fetch the
/// ranking content from the [`RankingStore`] to evaluate distances.
#[derive(Debug, Clone)]
pub struct PlainInvertedIndex {
    k: usize,
    remap: Arc<ItemRemap>,
    /// `offsets[d]..offsets[d + 1]` is the postings slice of dense item `d`.
    offsets: Vec<u32>,
    /// All postings, item-major, id-sorted within each item.
    postings: Vec<RankingId>,
    indexed: usize,
    num_items: usize,
}

impl PlainInvertedIndex {
    /// Indexes every ranking of the store.
    pub fn build(store: &RankingStore) -> Self {
        Self::build_with_remap(store, Arc::new(ItemRemap::build(store)), store.live_ids())
    }

    /// Indexes a subset of rankings. Ids must be supplied in ascending
    /// order so that postings lists stay id-sorted.
    pub fn build_from<I: IntoIterator<Item = RankingId>>(store: &RankingStore, ids: I) -> Self {
        Self::build_with_remap(store, Arc::new(ItemRemap::build(store)), ids)
    }

    /// Indexes a subset of rankings against a shared corpus remap (ids in
    /// ascending order). The engine builds one remap per corpus and shares
    /// it across all index structures; items the remap does not cover get
    /// no posting (the ranking stays findable through its mapped items),
    /// so a partial remap degrades results instead of panicking.
    pub fn build_with_remap<I: IntoIterator<Item = RankingId>>(
        store: &RankingStore,
        remap: Arc<ItemRemap>,
        ids: I,
    ) -> Self {
        let ids: Vec<RankingId> = ids.into_iter().collect();
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must ascend");
        let m = remap.len();
        // Counting sort over dense item ids; iterating `ids` in ascending
        // order keeps every per-item slice id-sorted.
        let mut offsets = vec![0u32; m + 1];
        for &id in &ids {
            for &item in store.items(id) {
                // An item absent from the remap simply gets no posting:
                // the ranking stays findable through its mapped items and
                // the query side already treats unmapped items as empty
                // lists, so a partial remap degrades instead of aborting.
                let Some(d) = remap.dense(item) else { continue };
                offsets[d as usize + 1] += 1;
            }
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let total = *offsets.last().unwrap_or(&0) as usize;
        let mut cursors: Vec<u32> = offsets[..m].to_vec();
        let mut postings = vec![RankingId(0); total];
        for &id in &ids {
            for &item in store.items(id) {
                // Must skip exactly the items the counting pass skipped.
                let Some(d) = remap.dense(item) else { continue };
                let d = d as usize;
                postings[cursors[d] as usize] = id;
                cursors[d] += 1;
            }
        }
        let num_items = (0..m).filter(|&d| offsets[d] < offsets[d + 1]).count();
        PlainInvertedIndex {
            k: store.k(),
            remap,
            offsets,
            postings,
            indexed: ids.len(),
            num_items,
        }
    }

    /// The ranking size the index was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of rankings indexed.
    pub fn indexed(&self) -> usize {
        self.indexed
    }

    /// Number of distinct items with at least one posting.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// The shared item remap backing the CSR layout.
    #[inline]
    pub fn remap(&self) -> &Arc<ItemRemap> {
        &self.remap
    }

    /// The postings list for `item` (id-sorted); `None` if the item is not
    /// in the corpus remap (the slice may be empty for subset builds).
    #[inline]
    pub fn list(&self, item: ItemId) -> Option<&[RankingId]> {
        let d = self.remap.dense(item)? as usize;
        Some(&self.postings[self.offsets[d] as usize..self.offsets[d + 1] as usize])
    }

    /// Length of the postings list for `item` (0 if absent).
    #[inline]
    pub fn list_len(&self, item: ItemId) -> usize {
        self.list(item).map(|l| l.len()).unwrap_or(0)
    }

    /// Mean postings-list length over all items with postings.
    pub fn avg_list_len(&self) -> f64 {
        if self.num_items == 0 {
            return 0.0;
        }
        self.postings.len() as f64 / self.num_items as f64
    }

    /// Exact heap footprint in bytes (Table 6 reporting): the index header,
    /// the two CSR arrays, and the item remap (shared remaps are counted in
    /// every index holding them).
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.postings.capacity() * std::mem::size_of::<RankingId>()
            + self.remap.heap_bytes()
    }

    /// Decomposes the index into its flat persistence form (the shared
    /// remap is persisted once by the engine, not per index).
    #[doc(hidden)]
    pub fn export_parts(&self) -> PlainIndexParts {
        PlainIndexParts {
            k: self.k as u32,
            indexed: self.indexed as u32,
            offsets: self.offsets.clone(),
            postings: ranksim_rankings::ranking_vec_into_u32(self.postings.clone()),
        }
    }

    /// Rebuilds the index from its flat persistence form against the
    /// corpus remap, validating the CSR invariants (monotone offsets
    /// covering the postings arena, one offsets row per dense item).
    #[doc(hidden)]
    pub fn from_parts(parts: PlainIndexParts, remap: Arc<ItemRemap>) -> Result<Self, String> {
        validate_csr(&parts.offsets, parts.postings.len(), remap.len())?;
        let m = remap.len();
        let num_items = (0..m)
            .filter(|&d| parts.offsets[d] < parts.offsets[d + 1])
            .count();
        Ok(PlainInvertedIndex {
            k: parts.k as usize,
            remap,
            offsets: parts.offsets,
            postings: ranksim_rankings::ranking_vec_from_u32(parts.postings),
            indexed: parts.indexed as usize,
            num_items,
        })
    }
}

/// Flat persistence form of a [`PlainInvertedIndex`].
#[doc(hidden)]
#[derive(Debug, Clone)]
pub struct PlainIndexParts {
    pub k: u32,
    pub indexed: u32,
    pub offsets: Vec<u32>,
    pub postings: Vec<u32>,
}

/// Validates a CSR offsets array: `m + 1` monotone entries whose last
/// offset covers the arena exactly.
pub(crate) fn validate_csr(offsets: &[u32], arena_len: usize, m: usize) -> Result<(), String> {
    if offsets.len() != m + 1 {
        return Err(format!(
            "CSR offsets length {} != remap size {} + 1",
            offsets.len(),
            m
        ));
    }
    if offsets.first().copied().unwrap_or(0) != 0 {
        return Err("CSR offsets must start at 0".into());
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err("CSR offsets not monotone".into());
    }
    let end = offsets.last().copied().unwrap_or(0) as usize;
    if end != arena_len {
        return Err(format!(
            "CSR offsets end {end} != postings arena length {arena_len}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_store;

    #[test]
    fn lists_are_id_sorted_and_complete() {
        let store = random_store(200, 6, 50, 1);
        let idx = PlainInvertedIndex::build(&store);
        assert_eq!(idx.indexed(), 200);
        let mut postings = 0usize;
        for item in 0..50u32 {
            if let Some(list) = idx.list(ItemId(item)) {
                assert!(list.windows(2).all(|w| w[0] < w[1]), "unsorted list");
                for &id in list {
                    assert!(store.items(id).contains(&ItemId(item)));
                }
                postings += list.len();
            }
        }
        assert_eq!(postings, 200 * 6, "every (ranking, item) pair indexed once");
    }

    #[test]
    fn subset_build_only_covers_subset() {
        let store = random_store(100, 5, 40, 2);
        let subset: Vec<RankingId> = store.ids().filter(|id| id.0 % 3 == 0).collect();
        let idx = PlainInvertedIndex::build_from(&store, subset.iter().copied());
        assert_eq!(idx.indexed(), subset.len());
        for item in 0..40u32 {
            if let Some(list) = idx.list(ItemId(item)) {
                for &id in list {
                    assert_eq!(id.0 % 3, 0);
                }
            }
        }
    }

    #[test]
    fn partial_remap_degrades_to_empty_postings() {
        let mut store = RankingStore::new(3);
        store.push_items_unchecked(&[1, 2, 3].map(ItemId));
        store.push_items_unchecked(&[2, 3, 4].map(ItemId));
        // The remap deliberately misses items 3 and 4: those items get
        // no posting, everything else indexes normally — no panic.
        let remap = Arc::new(ItemRemap::from_raw_ids(vec![1, 2]));
        let idx = PlainInvertedIndex::build_with_remap(&store, remap, store.live_ids());
        assert_eq!(idx.indexed(), 2);
        assert_eq!(idx.list(ItemId(1)).unwrap(), &[RankingId(0)]);
        assert_eq!(idx.list(ItemId(2)).unwrap(), &[RankingId(0), RankingId(1)]);
        assert_eq!(idx.list(ItemId(3)), None);
        assert_eq!(idx.list_len(ItemId(4)), 0);
    }

    #[test]
    fn avg_list_len_matches_hand_count() {
        let mut store = RankingStore::new(2);
        store.push_items_unchecked(&[1, 2].map(ItemId));
        store.push_items_unchecked(&[1, 3].map(ItemId));
        store.push_items_unchecked(&[1, 4].map(ItemId));
        let idx = PlainInvertedIndex::build(&store);
        // lists: 1→3 entries, 2→1, 3→1, 4→1 ⇒ avg 6/4.
        assert_eq!(idx.num_items(), 4);
        assert!((idx.avg_list_len() - 1.5).abs() < 1e-12);
        assert_eq!(idx.list_len(ItemId(1)), 3);
        assert_eq!(idx.list_len(ItemId(99)), 0);
    }

    #[test]
    fn heap_bytes_is_exact() {
        let mut store = RankingStore::new(3);
        store.push_items_unchecked(&[1, 2, 3].map(ItemId));
        store.push_items_unchecked(&[2, 3, 4].map(ItemId));
        let idx = PlainInvertedIndex::build(&store);
        // 4 distinct items → 5 offsets; 2 rankings × k=3 → 6 postings; the
        // build sizes both arrays exactly, so capacity == len.
        let expected = std::mem::size_of::<PlainInvertedIndex>()
            + 5 * std::mem::size_of::<u32>()
            + 6 * std::mem::size_of::<RankingId>()
            + idx.remap().heap_bytes();
        assert_eq!(idx.heap_bytes(), expected);
    }
}
