//! Property tests: every inverted-index algorithm must equal the
//! brute-force oracle on arbitrary corpora, queries and thresholds, and
//! the paper's lemmas must hold structurally.

use proptest::prelude::*;
use ranksim_invindex::{
    blocked_prune::{blocked_prune, blocked_prune_drop},
    drop::{keep_positions, omega},
    fv::{filter_validate, filter_validate_drop},
    listmerge::list_merge,
    AugmentedInvertedIndex, BlockedInvertedIndex, PlainInvertedIndex,
};
use ranksim_rankings::{
    min_distance_for_overlap, ItemId, PositionMap, QueryStats, RankingId, RankingStore,
};

fn store_from(rankings: &[Vec<u32>]) -> RankingStore {
    let k = rankings[0].len();
    let mut store = RankingStore::new(k);
    for r in rankings {
        let items: Vec<ItemId> = r.iter().map(|&i| ItemId(i)).collect();
        store.push_items_unchecked(&items);
    }
    store
}

fn oracle(store: &RankingStore, q: &[ItemId], theta: u32) -> Vec<RankingId> {
    let qm = PositionMap::new(q);
    let mut v: Vec<RankingId> = store
        .ids()
        .filter(|&id| qm.distance_to(store.items(id)) <= theta)
        .collect();
    v.sort_unstable();
    v
}

fn corpus(n: usize, k: usize, domain: u32) -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(
        proptest::sample::subsequence((0..domain).collect::<Vec<u32>>(), k).prop_shuffle(),
        n,
    )
}

fn query(k: usize, domain: u32) -> impl Strategy<Value = Vec<ItemId>> {
    proptest::sample::subsequence((0..domain).collect::<Vec<u32>>(), k)
        .prop_shuffle()
        .prop_map(|v| v.into_iter().map(ItemId).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_algorithm_equals_oracle(
        rankings in corpus(70, 6, 24),
        q in query(6, 24),
        // θ strictly below d_max = k(k+1) = 42: at θ = d_max zero-overlap
        // rankings qualify, which no inverted index can surface (the
        // paper's standing assumption, Section 4).
        theta in 0u32..42,
    ) {
        let store = store_from(&rankings);
        let expect = oracle(&store, &q, theta);
        let plain = PlainInvertedIndex::build(&store);
        let aug = AugmentedInvertedIndex::build(&store);
        let blocked = BlockedInvertedIndex::build(&store);
        let mut runs: Vec<(&str, Vec<RankingId>)> = Vec::new();
        let mut s = QueryStats::new();
        runs.push(("F&V", filter_validate(&plain, &store, &q, theta, &mut s)));
        runs.push(("F&V+Drop", filter_validate_drop(&plain, &store, &q, theta, &mut s)));
        runs.push(("ListMerge", list_merge(&aug, &store, &q, theta, &mut s)));
        runs.push(("Blocked+Prune", blocked_prune(&blocked, &store, &q, theta, &mut s)));
        runs.push(("Blocked+Prune+Drop", blocked_prune_drop(&blocked, &store, &q, theta, &mut s)));
        for (name, mut got) in runs {
            got.sort_unstable();
            prop_assert_eq!(&got, &expect, "{} disagrees at θ={}", name, theta);
        }
    }

    #[test]
    fn lemma2_no_false_negatives_under_any_list_choice(
        rankings in corpus(50, 6, 20),
        q in query(6, 20),
        theta in 0u32..=30,
    ) {
        // Accessing exactly the kept lists must surface every true result
        // through at least one posting.
        let store = store_from(&rankings);
        let plain = PlainInvertedIndex::build(&store);
        let kept = keep_positions(&q, theta, |p| plain.list_len(q[p]));
        let expect = oracle(&store, &q, theta);
        for id in expect {
            let items = store.items(id);
            let surfaces = kept.iter().any(|&p| items.contains(&q[p]));
            prop_assert!(surfaces, "result {} invisible through kept lists {:?}", id, kept);
        }
    }

    #[test]
    fn omega_bound_is_tightest_safe_integer(
        k in 4usize..=12,
        theta in 0u32..=100,
    ) {
        let theta = theta.min((k * (k + 1)) as u32);
        let w = omega(k, theta);
        // Safe: overlap below ω is impossible for results.
        if w > 0 {
            prop_assert!(min_distance_for_overlap(k, w - 1) > theta);
        }
        // Not vacuous: overlap ω itself must be feasible (ω ≤ k) and the
        // bound at ω must permit distances ≤ θ... except for the floored
        // boundary where L(k, ω) may exceed θ by design.
        prop_assert!(w <= k);
    }

    #[test]
    fn stats_candidates_bounded_by_corpus(
        rankings in corpus(40, 5, 18),
        q in query(5, 18),
        theta in 0u32..=30,
    ) {
        let store = store_from(&rankings);
        let plain = PlainInvertedIndex::build(&store);
        let mut s = QueryStats::new();
        let res = filter_validate(&plain, &store, &q, theta, &mut s);
        prop_assert!(s.candidates <= 40);
        prop_assert!(res.len() as u64 <= s.candidates);
        prop_assert_eq!(s.distance_calls, s.candidates, "F&V validates every candidate once");
    }
}
