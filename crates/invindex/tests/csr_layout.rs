//! CSR layout oracle: for random stores, every index's CSR postings must
//! equal the postings an explicit per-item hashmap build (the
//! pre-refactor layout) produces — list contents, ordering, blocks and
//! lengths.

use proptest::prelude::*;
use ranksim_invindex::{AugmentedInvertedIndex, BlockedInvertedIndex, PlainInvertedIndex, Posting};
use ranksim_rankings::hash::{fx_map_with_capacity, FxHashMap};
use ranksim_rankings::{ItemId, RankingId, RankingStore};

/// Strategy: a corpus of `n` size-`k` rankings over `0..domain`.
fn corpus(n: usize, k: usize, domain: u32) -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(
        proptest::sample::subsequence((0..domain).collect::<Vec<u32>>(), k).prop_shuffle(),
        n,
    )
}

fn store_of(rankings: &[Vec<u32>]) -> RankingStore {
    let k = rankings[0].len();
    let mut store = RankingStore::new(k);
    for r in rankings {
        let items: Vec<ItemId> = r.iter().copied().map(ItemId).collect();
        store.push_items_unchecked(&items);
    }
    store
}

/// The pre-refactor reference layout: item → id-ordered postings.
fn reference_postings(store: &RankingStore) -> FxHashMap<ItemId, Vec<(RankingId, u32)>> {
    let mut lists: FxHashMap<ItemId, Vec<(RankingId, u32)>> = fx_map_with_capacity(64);
    for id in store.ids() {
        for (rank, &item) in store.items(id).iter().enumerate() {
            lists.entry(item).or_default().push((id, rank as u32));
        }
    }
    lists
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn plain_csr_lists_equal_hashmap_postings(rankings in corpus(40, 6, 30)) {
        let store = store_of(&rankings);
        let reference = reference_postings(&store);
        let idx = PlainInvertedIndex::build(&store);
        let total: usize = reference.values().map(|v| v.len()).sum();
        prop_assert_eq!(total, store.len() * store.k());
        prop_assert_eq!(idx.num_items(), reference.len());
        for item in 0..31u32 {
            let item = ItemId(item);
            let expect: Vec<RankingId> = reference
                .get(&item)
                .map(|v| v.iter().map(|&(id, _)| id).collect())
                .unwrap_or_default();
            let got: Vec<RankingId> = idx.list(item).unwrap_or(&[]).to_vec();
            prop_assert_eq!(got, expect, "item {}", item);
            prop_assert_eq!(idx.list_len(item), reference.get(&item).map(|v| v.len()).unwrap_or(0));
        }
    }

    #[test]
    fn augmented_csr_lists_equal_hashmap_postings(rankings in corpus(35, 5, 25)) {
        let store = store_of(&rankings);
        let reference = reference_postings(&store);
        let idx = AugmentedInvertedIndex::build(&store);
        for item in 0..26u32 {
            let item = ItemId(item);
            let expect: Vec<Posting> = reference
                .get(&item)
                .map(|v| v.iter().map(|&(id, rank)| Posting { id, rank }).collect())
                .unwrap_or_default();
            let got: Vec<Posting> = idx.list(item).unwrap_or(&[]).to_vec();
            prop_assert_eq!(got, expect, "item {}", item);
        }
    }

    #[test]
    fn blocked_csr_blocks_equal_hashmap_postings(rankings in corpus(30, 5, 20)) {
        let store = store_of(&rankings);
        let reference = reference_postings(&store);
        let idx = BlockedInvertedIndex::build(&store);
        for item in 0..21u32 {
            let item = ItemId(item);
            for rank in 0..store.k() as u32 {
                let expect: Vec<RankingId> = reference
                    .get(&item)
                    .map(|v| {
                        v.iter()
                            .filter(|&&(_, r)| r == rank)
                            .map(|&(id, _)| id)
                            .collect()
                    })
                    .unwrap_or_default();
                prop_assert_eq!(idx.block(item, rank).to_vec(), expect, "item {} rank {}", item, rank);
            }
            prop_assert_eq!(idx.list_len(item), reference.get(&item).map(|v| v.len()).unwrap_or(0));
        }
    }
}
