//! Burkhard–Keller tree over the (discrete) Footrule metric.
//!
//! A BK-tree node holds one ranking and one child pointer per observed
//! distance value: every ranking inserted below the edge labelled `e` is at
//! distance **exactly** `e` from the node (insertion routes by exact
//! distance). This invariant is what makes BK-subtrees usable as
//! fixed-radius partitions in the coarse index (Section 4.1 of the paper):
//! the subtree hanging off an edge `e ≤ θ_C` is, wholesale, within `θ_C` of
//! the node.
//!
//! Range queries use the triangle inequality: at a node at distance `d`
//! from the query, only child edges in `[d − θ, d + θ]` can contain
//! results.

use ranksim_rankings::{footrule_pairs, ItemId, QueryStats, RankingId, RankingStore};

/// One node of the arena-allocated BK-tree.
#[derive(Debug, Clone)]
pub struct BkNode {
    /// The ranking stored at this node.
    pub ranking: RankingId,
    /// `(edge distance, child node index)`, sorted by distance.
    pub children: Vec<(u32, u32)>,
    /// Number of nodes in the subtree rooted here (including this node).
    pub subtree_size: u32,
}

/// An arena-allocated Burkhard–Keller tree.
///
/// The tree stores [`RankingId`]s; ranking content is resolved through the
/// [`RankingStore`] passed to each operation (the store must outlive and
/// match the ids, which the coarse index guarantees by construction).
#[derive(Debug, Clone, Default)]
pub struct BkTree {
    nodes: Vec<BkNode>,
    /// Distance evaluations spent on construction (Table 6 reporting).
    pub build_distance_calls: u64,
}

impl BkTree {
    /// An empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a tree over all **live** rankings of `store` in id order
    /// (identical to all rankings on a pristine store).
    pub fn build(store: &RankingStore) -> Self {
        let mut t = BkTree {
            nodes: Vec::with_capacity(store.live_len()),
            build_distance_calls: 0,
        };
        for id in store.live_ids() {
            t.insert(store, id);
        }
        t
    }

    /// Builds a tree over a subset of rankings.
    pub fn build_from<I: IntoIterator<Item = RankingId>>(store: &RankingStore, ids: I) -> Self {
        let mut t = BkTree::new();
        for id in ids {
            t.insert(store, id);
        }
        t
    }

    /// Number of rankings in the tree.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to a node by arena index (used by the partitioner).
    pub fn node(&self, idx: u32) -> &BkNode {
        &self.nodes[idx as usize]
    }

    /// The arena index of the root (0 unless the tree is empty).
    pub fn root(&self) -> Option<u32> {
        if self.nodes.is_empty() {
            None
        } else {
            Some(0)
        }
    }

    /// Inserts ranking `id`, returning its arena index.
    pub fn insert(&mut self, store: &RankingStore, id: RankingId) -> u32 {
        if self.nodes.is_empty() {
            self.nodes.push(BkNode {
                ranking: id,
                children: Vec::new(),
                subtree_size: 1,
            });
            return 0;
        }
        self.insert_under(store, 0, id)
    }

    /// Inserts ranking `id` into the subtree rooted at arena index `from`
    /// (standard BK routing starting there), returning the new node's
    /// arena index. Any BK subtree is a BK tree, so this preserves every
    /// exact-distance edge invariant *within* that subtree — the append
    /// path of the coarse index inserts new partition members under their
    /// partition's medoid node this way. `subtree_size` counters are
    /// maintained from `from` downwards only; ancestors of `from` keep
    /// their build-time sizes (they are only read at partitioning time).
    /// The content of `id` is resolved through the store at insertion
    /// time and must stay frozen while the node is referenced (the
    /// store's quarantine rule guarantees it).
    pub fn insert_under(&mut self, store: &RankingStore, from: u32, id: RankingId) -> u32 {
        let new_idx = self.nodes.len() as u32;
        let pairs = store.sorted_pairs(id);
        let k = store.k();
        let mut cur = from;
        loop {
            let node = &self.nodes[cur as usize];
            let d = footrule_pairs(pairs, store.sorted_pairs(node.ranking), k);
            self.build_distance_calls += 1;
            self.nodes[cur as usize].subtree_size += 1;
            match self.nodes[cur as usize]
                .children
                .binary_search_by_key(&d, |&(e, _)| e)
            {
                Ok(pos) => cur = self.nodes[cur as usize].children[pos].1,
                Err(pos) => {
                    self.nodes[cur as usize].children.insert(pos, (d, new_idx));
                    self.nodes.push(BkNode {
                        ranking: id,
                        children: Vec::new(),
                        subtree_size: 1,
                    });
                    return new_idx;
                }
            }
        }
    }

    /// Range query over the whole tree: every ranking within `theta_raw` of
    /// the query, in no particular order.
    pub fn range_query(
        &self,
        store: &RankingStore,
        query_pairs: &[(ItemId, u32)],
        theta_raw: u32,
        stats: &mut QueryStats,
    ) -> Vec<RankingId> {
        let mut out = Vec::new();
        if let Some(root) = self.root() {
            self.range_query_from(store, root, query_pairs, theta_raw, stats, &mut out);
        }
        stats.results += out.len() as u64;
        out
    }

    /// Range query restricted to the subtree rooted at arena index `from`
    /// (a full-fledged BK-tree itself) — the validation primitive of the
    /// coarse index's partitions.
    pub fn range_query_from(
        &self,
        store: &RankingStore,
        from: u32,
        query_pairs: &[(ItemId, u32)],
        theta_raw: u32,
        stats: &mut QueryStats,
        out: &mut Vec<RankingId>,
    ) {
        let mut stack = Vec::new();
        self.range_query_from_with(store, from, query_pairs, theta_raw, &mut stack, stats, out);
    }

    /// Like [`BkTree::range_query_from`] but traversing through a
    /// caller-owned `stack` buffer, so repeated queries allocate nothing
    /// (the coarse index threads its `QueryScratch` tree stack here).
    #[allow(clippy::too_many_arguments)]
    pub fn range_query_from_with(
        &self,
        store: &RankingStore,
        from: u32,
        query_pairs: &[(ItemId, u32)],
        theta_raw: u32,
        stack: &mut Vec<u32>,
        stats: &mut QueryStats,
        out: &mut Vec<RankingId>,
    ) {
        let k = store.k();
        stack.clear();
        stack.push(from);
        while let Some(idx) = stack.pop() {
            let node = &self.nodes[idx as usize];
            stats.tree_nodes_visited += 1;
            stats.count_distance();
            let d = footrule_pairs(query_pairs, store.sorted_pairs(node.ranking), k);
            // Tombstone filter: dead rankings still *route* (their frozen
            // content keeps every triangle-inequality bound exact) but are
            // never reported.
            if d <= theta_raw && store.is_live(node.ranking) {
                out.push(node.ranking);
            }
            let lo = d.saturating_sub(theta_raw);
            let hi = d + theta_raw;
            // children is sorted by edge distance: binary-search the window.
            let start = node.children.partition_point(|&(e, _)| e < lo);
            for &(e, child) in &node.children[start..] {
                if e > hi {
                    break;
                }
                stack.push(child);
            }
        }
    }

    /// Collects every ranking id in the subtree rooted at `from`.
    pub fn collect_subtree(&self, from: u32, out: &mut Vec<RankingId>) {
        let mut stack = vec![from];
        while let Some(idx) = stack.pop() {
            let node = &self.nodes[idx as usize];
            out.push(node.ranking);
            stack.extend(node.children.iter().map(|&(_, c)| c));
        }
    }

    /// Approximate heap footprint in bytes (Table 6 reporting).
    pub fn heap_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<BkNode>()
            + self
                .nodes
                .iter()
                .map(|n| n.children.capacity() * std::mem::size_of::<(u32, u32)>())
                .sum::<usize>()
    }

    /// Decomposes the tree into its flat persistence form: one CSR arena
    /// over the per-node child lists (children keep their edge-distance
    /// sort order by flattening in place), plus parallel per-node arrays.
    #[doc(hidden)]
    pub fn export_parts(&self) -> BkTreeParts {
        let total: usize = self.nodes.iter().map(|n| n.children.len()).sum();
        let mut parts = BkTreeParts {
            rankings: Vec::with_capacity(self.nodes.len()),
            subtree_sizes: Vec::with_capacity(self.nodes.len()),
            child_offsets: Vec::with_capacity(self.nodes.len() + 1),
            child_edges: Vec::with_capacity(total),
            child_targets: Vec::with_capacity(total),
        };
        parts.child_offsets.push(0);
        for n in &self.nodes {
            parts.rankings.push(n.ranking.0);
            parts.subtree_sizes.push(n.subtree_size);
            for &(e, c) in &n.children {
                parts.child_edges.push(e);
                parts.child_targets.push(c);
            }
            parts.child_offsets.push(parts.child_edges.len() as u32);
        }
        parts
    }

    /// Rebuilds the tree from its flat persistence form, validating the
    /// CSR and arena-index invariants (`build_distance_calls` is a
    /// construction statistic and resets to 0).
    #[doc(hidden)]
    pub fn from_parts(parts: BkTreeParts) -> Result<Self, String> {
        let n = parts.rankings.len();
        if parts.subtree_sizes.len() != n || parts.child_offsets.len() != n + 1 {
            return Err("BK-tree node arrays disagree in length".into());
        }
        if parts.child_offsets.first().copied().unwrap_or(0) != 0
            || parts.child_offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err("BK-tree child offsets not monotone from 0".into());
        }
        let total = parts.child_offsets.last().copied().unwrap_or(0) as usize;
        if parts.child_edges.len() != total || parts.child_targets.len() != total {
            return Err("BK-tree child arena length disagrees with offsets".into());
        }
        if let Some(&bad) = parts.child_targets.iter().find(|&&c| c as usize >= n) {
            return Err(format!("BK-tree child index {bad} out of arena bounds {n}"));
        }
        // Every node must be reachable from the root exactly once — a
        // cyclic or forested child graph would hang the stack-driven
        // traversals (defense in depth for Trust-mode loads).
        if n > 0 {
            let mut seen = vec![false; n];
            let mut stack = vec![0u32];
            let mut visited = 0usize;
            while let Some(i) = stack.pop() {
                let i = i as usize;
                if seen[i] {
                    return Err(format!("BK-tree node {i} reachable twice (cycle)"));
                }
                seen[i] = true;
                visited += 1;
                let (lo, hi) = (parts.child_offsets[i], parts.child_offsets[i + 1]);
                stack.extend_from_slice(&parts.child_targets[lo as usize..hi as usize]);
            }
            if visited != n {
                return Err(format!(
                    "BK-tree has {} nodes unreachable from the root",
                    n - visited
                ));
            }
        }
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let lo = parts.child_offsets[i] as usize;
            let hi = parts.child_offsets[i + 1] as usize;
            let children: Vec<(u32, u32)> = parts.child_edges[lo..hi]
                .iter()
                .copied()
                .zip(parts.child_targets[lo..hi].iter().copied())
                .collect();
            if children.windows(2).any(|w| w[0].0 >= w[1].0) {
                return Err(format!("BK-tree node {i} child edges not strictly sorted"));
            }
            nodes.push(BkNode {
                ranking: RankingId(parts.rankings[i]),
                children,
                subtree_size: parts.subtree_sizes[i],
            });
        }
        Ok(BkTree {
            nodes,
            build_distance_calls: 0,
        })
    }
}

/// Flat persistence form of a [`BkTree`] (see [`BkTree::export_parts`]).
#[doc(hidden)]
#[derive(Debug, Clone, Default)]
pub struct BkTreeParts {
    pub rankings: Vec<u32>,
    pub subtree_sizes: Vec<u32>,
    pub child_offsets: Vec<u32>,
    pub child_edges: Vec<u32>,
    pub child_targets: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_store;
    use crate::{linear_scan, query_pairs};

    #[test]
    fn empty_tree_queries_empty() {
        let store = RankingStore::new(4);
        let tree = BkTree::new();
        let q = query_pairs(&[1, 2, 3, 4].map(ItemId));
        let mut stats = QueryStats::new();
        assert!(tree.range_query(&store, &q, 100, &mut stats).is_empty());
    }

    #[test]
    fn range_query_matches_linear_scan() {
        let store = random_store(300, 7, 60, 11);
        let tree = BkTree::build(&store);
        assert_eq!(tree.len(), 300);
        for (qid, theta) in [(0u32, 0u32), (5, 10), (17, 24), (100, 40), (299, 56)] {
            let q = query_pairs(store.items(RankingId(qid)));
            let mut s1 = QueryStats::new();
            let mut s2 = QueryStats::new();
            let mut expect = linear_scan(&store, &q, theta, &mut s1);
            let mut got = tree.range_query(&store, &q, theta, &mut s2);
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expect, "qid={qid} θ={theta}");
        }
    }

    #[test]
    fn bk_invariant_subtree_distance_is_edge_label() {
        // Every node in the subtree under edge e is at distance exactly e
        // from the parent node — the partitioning correctness hinge.
        let store = random_store(200, 6, 40, 5);
        let tree = BkTree::build(&store);
        for idx in 0..tree.len() as u32 {
            let node = tree.node(idx);
            for &(e, child) in &node.children {
                let mut members = Vec::new();
                tree.collect_subtree(child, &mut members);
                for m in members {
                    let d = ranksim_rankings::footrule_store(&store, node.ranking, m);
                    assert_eq!(d, e, "subtree member at wrong distance");
                }
            }
        }
    }

    #[test]
    fn subtree_sizes_consistent() {
        let store = random_store(150, 5, 30, 9);
        let tree = BkTree::build(&store);
        for idx in 0..tree.len() as u32 {
            let node = tree.node(idx);
            let children_total: u32 = node
                .children
                .iter()
                .map(|&(_, c)| tree.node(c).subtree_size)
                .sum();
            assert_eq!(node.subtree_size, 1 + children_total);
        }
        assert_eq!(tree.node(0).subtree_size as usize, tree.len());
    }

    #[test]
    fn duplicates_chain_under_edge_zero() {
        let mut store = RankingStore::new(3);
        for _ in 0..4 {
            store.push_items_unchecked(&[1, 2, 3].map(ItemId));
        }
        let tree = BkTree::build(&store);
        let q = query_pairs(&[1, 2, 3].map(ItemId));
        let mut stats = QueryStats::new();
        let res = tree.range_query(&store, &q, 0, &mut stats);
        assert_eq!(res.len(), 4);
    }

    #[test]
    fn tombstoned_rankings_route_but_are_not_reported() {
        let mut store = random_store(200, 6, 40, 21);
        let tree = BkTree::build(&store);
        let victims = [RankingId(3), RankingId(77), RankingId(150)];
        for v in victims {
            assert!(store.remove(v));
        }
        let q = query_pairs(store.items(RankingId(3)));
        let mut s1 = QueryStats::new();
        let mut s2 = QueryStats::new();
        let theta = 30;
        let mut expect = linear_scan(&store, &q, theta, &mut s1);
        let mut got = tree.range_query(&store, &q, theta, &mut s2);
        expect.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, expect);
        for v in victims {
            assert!(!got.contains(&v), "tombstoned {v} reported");
        }
    }

    #[test]
    fn insert_under_keeps_subtree_bk_invariant() {
        // Append path: route the new ranking from an interior node; every
        // exact-distance edge *within that subtree* must stay valid, which
        // is what partition validation relies on.
        let mut store = random_store(120, 6, 30, 7);
        let mut tree = BkTree::build(&store);
        let root_child = tree.node(0).children[0].1;
        let fresh = store.push_items_unchecked(&[55, 4, 8, 1, 0, 29].map(ItemId));
        let new_idx = tree.insert_under(&store, root_child, fresh);
        assert_eq!(tree.node(new_idx).ranking, fresh);
        // Verify the BK invariant for the whole subtree under root_child.
        let mut stack = vec![root_child];
        while let Some(idx) = stack.pop() {
            let node = tree.node(idx);
            for &(e, child) in &node.children {
                let mut members = Vec::new();
                tree.collect_subtree(child, &mut members);
                for m in members {
                    let d = ranksim_rankings::footrule_store(&store, node.ranking, m);
                    assert_eq!(d, e, "subtree member at wrong distance after insert");
                }
                stack.push(child);
            }
        }
        // A range query from that subtree root can see the new ranking.
        let q = query_pairs(store.items(fresh));
        let mut stats = QueryStats::new();
        let mut out = Vec::new();
        tree.range_query_from(&store, root_child, &q, 0, &mut stats, &mut out);
        assert_eq!(out, vec![fresh]);
    }

    #[test]
    fn build_counts_distance_calls() {
        let store = random_store(50, 5, 25, 2);
        let tree = BkTree::build(&store);
        // At least n−1 comparisons (root comparison per insert).
        assert!(tree.build_distance_calls >= 49);
    }
}
