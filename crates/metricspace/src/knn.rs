//! k-nearest-neighbour search over the metric trees.
//!
//! The paper's related work frames KNN as the other canonical similarity
//! query over metric data; range search is what the coarse index
//! optimizes, but the underlying trees support best-first KNN directly.
//! All searches are branch-and-bound: a max-heap holds the current k best
//! candidates and its worst distance `τ` prunes subtrees exactly like a
//! shrinking range query.
//!
//! Results are `(distance, id)` pairs sorted ascending and fully
//! deterministic: the heap keeps the k lexicographically smallest
//! `(distance, id)` pairs, so ties at the k-th distance resolve to the
//! smallest ranking ids. Every traversal (linear scan, BK-, VP- and
//! M-tree) therefore returns the **same** result set, which is what lets
//! a sharded search merge per-shard top-k lists into a bit-identical
//! global answer (see `ranksim_core::shard`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::bktree::BkTree;
use crate::vptree::VpTree;
use ranksim_rankings::{footrule_pairs, ItemId, QueryStats, RankingId, RankingStore};

/// A bounded max-heap of the current k best `(distance, id)` pairs.
#[derive(Debug)]
pub struct KnnHeap {
    k: usize,
    heap: BinaryHeap<(u32, RankingId)>,
}

impl KnnHeap {
    /// An empty heap for `k ≥ 1` neighbours.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        KnnHeap {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// The current pruning radius: the k-th best distance, or `u32::MAX`
    /// while fewer than k candidates are known.
    #[inline]
    pub fn tau(&self) -> u32 {
        if self.heap.len() < self.k {
            u32::MAX
        } else {
            self.heap.peek().expect("non-empty").0
        }
    }

    /// Offers a candidate. The heap keeps the k lexicographically
    /// smallest `(distance, id)` pairs: a candidate tied at the k-th
    /// distance still displaces a larger id, so the result set is
    /// independent of offer order (and of how a corpus is sharded).
    #[inline]
    pub fn offer(&mut self, dist: u32, id: RankingId) {
        if self.heap.len() < self.k {
            self.heap.push((dist, id));
        } else if (dist, id) < *self.heap.peek().expect("non-empty") {
            self.heap.push((dist, id));
            self.heap.pop();
        }
    }

    /// Extracts the neighbours sorted by ascending distance (ties by id).
    pub fn into_sorted(self) -> Vec<(u32, RankingId)> {
        let mut v = self.heap.into_vec();
        v.sort_unstable();
        v
    }
}

/// Brute-force KNN oracle over the live corpus (= all rankings on a
/// pristine store; tombstoned slots are skipped, freshly inserted ones
/// are naturally included).
pub fn knn_linear(
    store: &RankingStore,
    query_pairs: &[(ItemId, u32)],
    k_neighbours: usize,
    stats: &mut QueryStats,
) -> Vec<(u32, RankingId)> {
    let mut heap = KnnHeap::new(k_neighbours);
    for id in store.live_ids() {
        stats.count_distance();
        let d = footrule_pairs(query_pairs, store.sorted_pairs(id), store.k());
        heap.offer(d, id);
    }
    heap.into_sorted()
}

/// Best-first KNN over a [`BkTree`].
///
/// Subtrees hang under exact-distance edges, so an edge `e` under a node
/// at distance `d` from the query bounds its subtree's distances from
/// below by `|d − e|`; subtrees are visited in ascending bound order and
/// cut once the bound exceeds the heap's `τ`.
pub fn knn_bktree(
    tree: &BkTree,
    store: &RankingStore,
    query_pairs: &[(ItemId, u32)],
    k_neighbours: usize,
    stats: &mut QueryStats,
) -> Vec<(u32, RankingId)> {
    let mut heap = KnnHeap::new(k_neighbours);
    let Some(root) = tree.root() else {
        return Vec::new();
    };
    // Min-priority queue on the subtree lower bound.
    let mut frontier: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
    frontier.push(Reverse((0, root)));
    while let Some(Reverse((bound, idx))) = frontier.pop() {
        if bound > heap.tau() {
            break; // every remaining subtree is at least this far away
        }
        let node = tree.node(idx);
        stats.tree_nodes_visited += 1;
        stats.count_distance();
        let d = footrule_pairs(query_pairs, store.sorted_pairs(node.ranking), store.k());
        // Tombstoned nodes still steer the traversal (frozen content keeps
        // the bounds exact) but never occupy a heap slot.
        if store.is_live(node.ranking) {
            heap.offer(d, node.ranking);
        }
        let tau = heap.tau();
        for &(e, child) in &node.children {
            let child_bound = d.abs_diff(e);
            if child_bound <= tau {
                frontier.push(Reverse((child_bound, child)));
            }
        }
    }
    heap.into_sorted()
}

/// Best-first KNN over a [`VpTree`].
pub fn knn_vptree(
    tree: &VpTree,
    store: &RankingStore,
    query_pairs: &[(ItemId, u32)],
    k_neighbours: usize,
    stats: &mut QueryStats,
) -> Vec<(u32, RankingId)> {
    let mut heap = KnnHeap::new(k_neighbours);
    tree.knn_into(store, query_pairs, &mut heap, stats);
    heap.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_store;
    use crate::{query_pairs, MTree};

    fn distances(v: &[(u32, RankingId)]) -> Vec<u32> {
        v.iter().map(|&(d, _)| d).collect()
    }

    #[test]
    fn heap_keeps_k_smallest() {
        let mut h = KnnHeap::new(3);
        for (d, i) in [(9u32, 0u32), (2, 1), (7, 2), (1, 3), (8, 4), (0, 5)] {
            h.offer(d, RankingId(i));
        }
        let got = h.into_sorted();
        assert_eq!(distances(&got), vec![0, 1, 2]);
    }

    #[test]
    fn bktree_knn_matches_linear() {
        let store = random_store(300, 6, 40, 77);
        let tree = BkTree::build(&store);
        for qid in [0u32, 13, 150, 299] {
            let q = query_pairs(store.items(RankingId(qid)));
            for k in [1usize, 5, 20] {
                let mut s1 = QueryStats::new();
                let mut s2 = QueryStats::new();
                let expect = knn_linear(&store, &q, k, &mut s1);
                let got = knn_bktree(&tree, &store, &q, k, &mut s2);
                assert_eq!(distances(&got), distances(&expect), "qid={qid} k={k}");
                assert!(
                    s2.distance_calls <= s1.distance_calls,
                    "tree KNN must not exceed the scan's distance calls"
                );
            }
        }
    }

    #[test]
    fn vptree_knn_matches_linear() {
        let store = random_store(300, 6, 40, 88);
        let tree = VpTree::build(&store, 4);
        for qid in [0u32, 42, 299] {
            let q = query_pairs(store.items(RankingId(qid)));
            for k in [1usize, 7, 25] {
                let mut s1 = QueryStats::new();
                let mut s2 = QueryStats::new();
                let expect = knn_linear(&store, &q, k, &mut s1);
                let got = knn_vptree(&tree, &store, &q, k, &mut s2);
                assert_eq!(distances(&got), distances(&expect), "qid={qid} k={k}");
            }
        }
    }

    #[test]
    fn mtree_knn_matches_linear() {
        let store = random_store(300, 6, 40, 99);
        let tree = MTree::build(&store);
        for qid in [0u32, 7, 123] {
            let q = query_pairs(store.items(RankingId(qid)));
            for k in [1usize, 4, 16] {
                let mut s1 = QueryStats::new();
                let mut s2 = QueryStats::new();
                let expect = knn_linear(&store, &q, k, &mut s1);
                let got = tree.knn(&store, &q, k, &mut s2);
                assert_eq!(distances(&got), distances(&expect), "qid={qid} k={k}");
            }
        }
    }

    #[test]
    fn knn_ties_resolve_to_smallest_ids_everywhere() {
        // A store with heavy distance ties: every ranking duplicated, so
        // the k-th distance is almost always shared by several ids. All
        // four traversals must return the exact lexicographic top-k —
        // the property the sharded merge relies on.
        let base = random_store(120, 6, 25, 11);
        let mut store = RankingStore::new(6);
        for id in base.ids() {
            store.push_items_unchecked(base.items(id));
            store.push_items_unchecked(base.items(id));
        }
        let bk = BkTree::build(&store);
        let vp = VpTree::build(&store, 4);
        let mt = MTree::build(&store);
        for qid in [0u32, 37, 121, 239] {
            let q = query_pairs(store.items(RankingId(qid)));
            for k in [1usize, 3, 9, 30] {
                let mut s = QueryStats::new();
                let expect = knn_linear(&store, &q, k, &mut s);
                // The linear oracle itself is the lexicographic optimum:
                // re-offering in reverse id order changes nothing.
                let mut h = KnnHeap::new(k);
                for id in store.ids().collect::<Vec<_>>().into_iter().rev() {
                    h.offer(
                        ranksim_rankings::footrule_pairs(&q, store.sorted_pairs(id), store.k()),
                        id,
                    );
                }
                assert_eq!(h.into_sorted(), expect, "offer order changed the top-k");
                assert_eq!(
                    knn_bktree(&bk, &store, &q, k, &mut s),
                    expect,
                    "bk qid={qid} k={k}"
                );
                assert_eq!(
                    knn_vptree(&vp, &store, &q, k, &mut s),
                    expect,
                    "vp qid={qid} k={k}"
                );
                assert_eq!(mt.knn(&store, &q, k, &mut s), expect, "mt qid={qid} k={k}");
            }
        }
    }

    #[test]
    fn knn_ties_survive_tombstones_and_same_id_reinsertion() {
        // The latent tie-handling risk of a live corpus: when ids at the
        // k-th distance are deleted and later re-inserted *at the same
        // ranking id*, the lexicographic (distance, id) order must come
        // out exactly as on a freshly built corpus — smaller ids win ties
        // again, and tombstoned ids never occupy heap slots in between.
        let mut store = RankingStore::new(4);
        // Ten exact duplicates (ids 0..10) and ten distant rankings.
        for _ in 0..10 {
            store.push_items_unchecked(&[1, 2, 3, 4].map(ItemId));
        }
        for i in 0..10u32 {
            store.push_items_unchecked(
                &[100 + i * 4, 101 + i * 4, 102 + i * 4, 103 + i * 4].map(ItemId),
            );
        }
        let q = query_pairs(&[1, 2, 3, 4].map(ItemId));
        let ids = |v: &[(u32, RankingId)]| v.iter().map(|&(_, id)| id.0).collect::<Vec<_>>();
        let mut s = QueryStats::new();
        // A tree over the pristine corpus — kept across the removals to
        // prove dead nodes still route but never occupy slots.
        let full_tree = BkTree::build(&store);

        // All ten duplicates tie at distance 0; k = 4 keeps ids 0..4.
        assert_eq!(ids(&knn_linear(&store, &q, 4, &mut s)), vec![0, 1, 2, 3]);

        // Tombstone the current tie winners: the next-smallest tied ids
        // must take their heap slots, on the tree exactly like the scan.
        for v in [0u32, 1, 2] {
            assert!(store.remove(RankingId(v)));
        }
        let rebuilt = BkTree::build(&store); // post-removal live set
        assert_eq!(ids(&knn_linear(&store, &q, 4, &mut s)), vec![3, 4, 5, 6]);
        assert_eq!(
            ids(&knn_bktree(&rebuilt, &store, &q, 4, &mut s)),
            vec![3, 4, 5, 6]
        );
        assert_eq!(
            ids(&knn_bktree(&full_tree, &store, &q, 4, &mut s)),
            vec![3, 4, 5, 6],
            "a pre-removal tree must skip tombstoned ids via the store"
        );

        // Release and re-insert the same ranking ids with the same
        // content: the freshly rebuilt order must be bit-identical to the
        // never-mutated corpus — ids 0..4 win the tie again.
        store.release_removed_slots();
        for v in [0u32, 1, 2] {
            store.insert_items_at_unchecked(RankingId(v), &[1, 2, 3, 4].map(ItemId));
        }
        let tree2 = BkTree::build(&store);
        assert_eq!(ids(&knn_linear(&store, &q, 4, &mut s)), vec![0, 1, 2, 3]);
        assert_eq!(
            ids(&knn_bktree(&tree2, &store, &q, 4, &mut s)),
            vec![0, 1, 2, 3]
        );
        // Offer order still cannot matter: reversed re-offering agrees.
        let mut h = KnnHeap::new(4);
        for id in store.live_ids().collect::<Vec<_>>().into_iter().rev() {
            h.offer(
                ranksim_rankings::footrule_pairs(&q, store.sorted_pairs(id), store.k()),
                id,
            );
        }
        assert_eq!(ids(&h.into_sorted()), vec![0, 1, 2, 3]);
    }

    #[test]
    fn knn_with_k_exceeding_corpus_returns_everything() {
        let store = random_store(20, 5, 20, 3);
        let tree = BkTree::build(&store);
        let q = query_pairs(store.items(RankingId(0)));
        let mut s = QueryStats::new();
        let got = knn_bktree(&tree, &store, &q, 50, &mut s);
        assert_eq!(got.len(), 20);
        assert_eq!(got[0].0, 0, "the query's own ranking is nearest");
    }

    #[test]
    fn knn_first_neighbour_of_member_is_itself() {
        let store = random_store(100, 5, 30, 5);
        let tree = MTree::build(&store);
        for qid in 0..20u32 {
            let q = query_pairs(store.items(RankingId(qid)));
            let mut s = QueryStats::new();
            let got = tree.knn(&store, &q, 1, &mut s);
            assert_eq!(got[0].0, 0);
        }
    }
}
