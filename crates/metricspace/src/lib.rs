//! Metric-space index structures over top-k rankings.
//!
//! The adapted Footrule distance is a metric over top-k lists (Fagin et
//! al., 2003), so classical metric access methods apply directly. This
//! crate implements the structures the paper evaluates or builds on:
//!
//! * [`BkTree`] — Burkhard–Keller tree for discrete metrics; both a
//!   similarity-search baseline (Figures 5/6) and the substrate the coarse
//!   index uses to partition the corpus (Section 4.1),
//! * [`MTree`] — the balanced M-tree of Ciaccia, Patella & Zezula
//!   (VLDB 1997), the slower metric competitor of Figure 5,
//! * [`VpTree`] — a vantage-point tree (Uhlmann 1991 / Yianilos 1993),
//!   included as the related-work structure and for ablations,
//! * [`partition`] — fixed-radius partitionings: the BK-subtree scheme of
//!   the paper's Figure 1 and the Chávez–Navarro random-medoid scheme the
//!   cost model reasons about,
//! * [`linear_scan`] — the brute-force oracle used by tests and the
//!   "validate everything" fallback.
//!
//! All structures work on raw (integer) Footrule distances and borrow a
//! [`RankingStore`] at build and query time.

pub mod bktree;
pub mod knn;
pub mod mtree;
pub mod partition;
pub mod vptree;

pub use bktree::BkTree;
#[doc(hidden)]
pub use bktree::BkTreeParts;
pub use knn::{knn_bktree, knn_linear, knn_vptree, KnnHeap};
pub use mtree::MTree;
#[doc(hidden)]
pub use mtree::MTreeParts;
#[doc(hidden)]
pub use partition::PartitioningParts;
pub use partition::{
    BkPartitioner, Partition, PartitionMembers, Partitioning, RandomMedoidPartitioner,
};
pub use vptree::VpTree;
#[doc(hidden)]
pub use vptree::VpTreeParts;

use ranksim_rankings::{footrule_pairs, ItemId, QueryStats, RankingId, RankingStore};

/// Brute-force range scan: evaluates the Footrule distance of every
/// **live** stored ranking against the query (= every ranking on a
/// pristine store). The correctness oracle for every index in this
/// workspace, mutated corpora included.
pub fn linear_scan(
    store: &RankingStore,
    query_pairs: &[(ItemId, u32)],
    theta_raw: u32,
    stats: &mut QueryStats,
) -> Vec<RankingId> {
    let mut out = Vec::new();
    for id in store.live_ids() {
        stats.count_distance();
        if footrule_pairs(query_pairs, store.sorted_pairs(id), store.k()) <= theta_raw {
            out.push(id);
        }
    }
    stats.results += out.len() as u64;
    out
}

/// Sorts query items into the `(item, rank)` pair form used by the metric
/// structures' query entry points.
pub fn query_pairs(items: &[ItemId]) -> Vec<(ItemId, u32)> {
    let mut v = Vec::new();
    query_pairs_into(items, &mut v);
    v
}

/// Allocation-free variant of [`query_pairs`]: rebuilds the pair form in
/// a reusable buffer (e.g. a `QueryScratch`'s `qp` field).
pub fn query_pairs_into(items: &[ItemId], out: &mut Vec<(ItemId, u32)>) {
    out.clear();
    out.extend(items.iter().enumerate().map(|(r, &i)| (i, r as u32)));
    out.sort_unstable();
}

pub mod testutil {
    //! Shared corpus generators for this crate's tests.
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    use ranksim_rankings::{ItemId, RankingStore};

    /// A small random corpus with planted near-duplicate structure so that
    /// range queries at moderate thresholds return non-trivial result sets.
    pub fn random_store(n: usize, k: usize, domain: u32, seed: u64) -> RankingStore {
        assert!(domain as usize >= k);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = RankingStore::with_capacity(k, n);
        let mut base: Vec<Vec<u32>> = Vec::new();
        for i in 0..n {
            let items: Vec<u32> = if !base.is_empty() && rng.random_bool(0.5) {
                // Perturb an existing ranking: swap two ranks or replace one item.
                let mut items = base[rng.random_range(0..base.len())].clone();
                if rng.random_bool(0.5) {
                    let a = rng.random_range(0..k);
                    let b = rng.random_range(0..k);
                    items.swap(a, b);
                } else {
                    let p = rng.random_range(0..k);
                    let mut cand = rng.random_range(0..domain);
                    while items.contains(&cand) {
                        cand = rng.random_range(0..domain);
                    }
                    items[p] = cand;
                }
                items
            } else {
                let mut pool: Vec<u32> = (0..domain).collect();
                pool.shuffle(&mut rng);
                pool.truncate(k);
                pool
            };
            if i % 3 == 0 {
                base.push(items.clone());
            }
            let ids: Vec<ItemId> = items.into_iter().map(ItemId).collect();
            store.push_items_unchecked(&ids);
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testutil::random_store;

    #[test]
    fn linear_scan_finds_self() {
        let store = random_store(50, 6, 40, 7);
        for id in store.ids() {
            let q = query_pairs(store.items(id));
            let mut stats = QueryStats::new();
            let res = linear_scan(&store, &q, 0, &mut stats);
            assert!(res.contains(&id));
            assert_eq!(stats.distance_calls, 50);
        }
    }

    #[test]
    fn linear_scan_threshold_monotone() {
        let store = random_store(80, 6, 30, 3);
        let q = query_pairs(store.items(ranksim_rankings::RankingId(0)));
        let mut prev = 0usize;
        for theta in [0u32, 6, 12, 20, 30, 42] {
            let mut stats = QueryStats::new();
            let res = linear_scan(&store, &q, theta, &mut stats);
            assert!(res.len() >= prev, "result set must grow with θ");
            prev = res.len();
        }
    }
}
