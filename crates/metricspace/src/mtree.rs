//! M-tree: the balanced, paged metric access method of Ciaccia, Patella &
//! Zezula (VLDB 1997).
//!
//! Implemented as the paper's metric-space competitor (Figure 5, Table 6).
//! Routing entries keep a covering radius and the distance to their parent
//! pivot, enabling the two classical prunes during range search:
//!
//! 1. `|d(q, parent) − d(entry, parent)| > θ + radius` — skip without any
//!    distance computation,
//! 2. `d(q, pivot) > θ + radius` — skip after one computation.
//!
//! Splits promote the two entries with maximum pairwise distance (exact
//! over the node, which is small) and distribute by generalized-hyperplane
//! assignment.

use ranksim_rankings::{footrule_pairs, ItemId, QueryStats, RankingId, RankingStore};

/// Default maximum number of entries per node.
pub const DEFAULT_NODE_CAPACITY: usize = 16;

#[derive(Debug, Clone)]
struct LeafEntry {
    id: RankingId,
    /// Distance to the pivot of the routing entry pointing at this leaf.
    parent_dist: u32,
}

#[derive(Debug, Clone)]
struct RoutingEntry {
    pivot: RankingId,
    /// Covering radius: every ranking in the subtree is within this
    /// distance of `pivot`.
    radius: u32,
    /// Distance from `pivot` to the parent node's routing pivot.
    parent_dist: u32,
    child: u32,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf(Vec<LeafEntry>),
    Internal(Vec<RoutingEntry>),
}

/// A balanced M-tree over rankings of a [`RankingStore`].
#[derive(Debug, Clone)]
pub struct MTree {
    nodes: Vec<Node>,
    root: u32,
    capacity: usize,
    len: usize,
    /// Distance evaluations spent on construction (Table 6 reporting).
    pub build_distance_calls: u64,
}

impl MTree {
    /// An empty tree with the default node capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_NODE_CAPACITY)
    }

    /// An empty tree with a custom node capacity (≥ 4).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 4, "M-tree node capacity must be at least 4");
        MTree {
            nodes: vec![Node::Leaf(Vec::new())],
            root: 0,
            capacity,
            len: 0,
            build_distance_calls: 0,
        }
    }

    /// Builds a tree over all **live** rankings of `store` in id order
    /// (identical to all rankings on a pristine store). [`MTree::insert`]
    /// is the native incremental append path; tombstoned rankings are
    /// filtered at leaf emission through [`RankingStore::is_live`] —
    /// routing pivots of dead rankings keep steering the descent, their
    /// frozen content keeps every covering-radius bound exact.
    pub fn build(store: &RankingStore) -> Self {
        let mut t = MTree::new();
        for id in store.live_ids() {
            t.insert(store, id);
        }
        t
    }

    /// Number of rankings in the tree.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn dist(&mut self, store: &RankingStore, a: RankingId, b: RankingId) -> u32 {
        self.build_distance_calls += 1;
        footrule_pairs(store.sorted_pairs(a), store.sorted_pairs(b), store.k())
    }

    /// Inserts ranking `id`.
    pub fn insert(&mut self, store: &RankingStore, id: RankingId) {
        self.len += 1;
        if let Some((e1, e2)) = self.insert_rec(store, self.root, id, None) {
            let new_root = self.nodes.len() as u32;
            self.nodes.push(Node::Internal(vec![e1, e2]));
            self.root = new_root;
        }
    }

    /// Recursive insert; returns replacement routing entries if `node` split.
    fn insert_rec(
        &mut self,
        store: &RankingStore,
        node: u32,
        id: RankingId,
        parent_pivot: Option<(RankingId, u32)>, // (pivot, d(id, pivot))
    ) -> Option<(RoutingEntry, RoutingEntry)> {
        let is_leaf = matches!(self.nodes[node as usize], Node::Leaf(_));
        if is_leaf {
            let parent_dist = parent_pivot.map(|(_, d)| d).unwrap_or(0);
            if let Node::Leaf(entries) = &mut self.nodes[node as usize] {
                entries.push(LeafEntry { id, parent_dist });
            }
            return self.maybe_split(store, node);
        }

        // Choose the routing entry: prefer containment (min distance among
        // entries whose radius already covers the point), otherwise minimal
        // radius enlargement.
        let n_entries = match &self.nodes[node as usize] {
            Node::Internal(es) => es.len(),
            Node::Leaf(_) => unreachable!(),
        };
        let mut best_contained: Option<(usize, u32)> = None;
        let mut best_enlarge: Option<(usize, u32, u32)> = None;
        for i in 0..n_entries {
            let (pivot, radius) = match &self.nodes[node as usize] {
                Node::Internal(es) => (es[i].pivot, es[i].radius),
                Node::Leaf(_) => unreachable!(),
            };
            let d = self.dist(store, id, pivot);
            if d <= radius {
                if best_contained.map(|(_, bd)| d < bd).unwrap_or(true) {
                    best_contained = Some((i, d));
                }
            } else {
                let enlarge = d - radius;
                if best_enlarge.map(|(_, be, _)| enlarge < be).unwrap_or(true) {
                    best_enlarge = Some((i, enlarge, d));
                }
            }
        }
        let (chosen, d_chosen) = match (best_contained, best_enlarge) {
            (Some((i, d)), _) => (i, d),
            (None, Some((i, _, d))) => {
                // Enlarge the covering radius to admit the new point.
                if let Node::Internal(es) = &mut self.nodes[node as usize] {
                    es[i].radius = d;
                }
                (i, d)
            }
            (None, None) => unreachable!("internal node with no entries"),
        };
        let (child, chosen_pivot) = match &self.nodes[node as usize] {
            Node::Internal(es) => (es[chosen].child, es[chosen].pivot),
            Node::Leaf(_) => unreachable!(),
        };

        if let Some((mut e1, mut e2)) =
            self.insert_rec(store, child, id, Some((chosen_pivot, d_chosen)))
        {
            // The child split: fix the new entries' parent distances
            // relative to THIS node's parent pivot, then swap them in.
            match parent_pivot {
                Some((pp, _)) => {
                    e1.parent_dist = self.dist(store, e1.pivot, pp);
                    e2.parent_dist = self.dist(store, e2.pivot, pp);
                }
                None => {
                    e1.parent_dist = 0;
                    e2.parent_dist = 0;
                }
            }
            if let Node::Internal(es) = &mut self.nodes[node as usize] {
                es.remove(chosen);
                es.push(e1);
                es.push(e2);
            }
            return self.maybe_split(store, node);
        }
        None
    }

    /// Splits `node` if over capacity, returning the two replacement
    /// routing entries (parent distances left for the caller to fill).
    fn maybe_split(
        &mut self,
        store: &RankingStore,
        node: u32,
    ) -> Option<(RoutingEntry, RoutingEntry)> {
        let over = match &self.nodes[node as usize] {
            Node::Leaf(es) => es.len() > self.capacity,
            Node::Internal(es) => es.len() > self.capacity,
        };
        if !over {
            return None;
        }
        match std::mem::replace(&mut self.nodes[node as usize], Node::Leaf(Vec::new())) {
            Node::Leaf(entries) => {
                let ids: Vec<RankingId> = entries.iter().map(|e| e.id).collect();
                let (p1, p2, d_to_p1, d_to_p2) = self.promote(store, &ids);
                let mut g1 = Vec::new();
                let mut g2 = Vec::new();
                let mut r1 = 0u32;
                let mut r2 = 0u32;
                for (i, e) in entries.into_iter().enumerate() {
                    if d_to_p1[i] <= d_to_p2[i] {
                        r1 = r1.max(d_to_p1[i]);
                        g1.push(LeafEntry {
                            id: e.id,
                            parent_dist: d_to_p1[i],
                        });
                    } else {
                        r2 = r2.max(d_to_p2[i]);
                        g2.push(LeafEntry {
                            id: e.id,
                            parent_dist: d_to_p2[i],
                        });
                    }
                }
                self.nodes[node as usize] = Node::Leaf(g1);
                let idx2 = self.nodes.len() as u32;
                self.nodes.push(Node::Leaf(g2));
                Some((
                    RoutingEntry {
                        pivot: p1,
                        radius: r1,
                        parent_dist: 0,
                        child: node,
                    },
                    RoutingEntry {
                        pivot: p2,
                        radius: r2,
                        parent_dist: 0,
                        child: idx2,
                    },
                ))
            }
            Node::Internal(entries) => {
                let ids: Vec<RankingId> = entries.iter().map(|e| e.pivot).collect();
                let (p1, p2, d_to_p1, d_to_p2) = self.promote(store, &ids);
                let mut g1 = Vec::new();
                let mut g2 = Vec::new();
                let mut r1 = 0u32;
                let mut r2 = 0u32;
                for (i, mut e) in entries.into_iter().enumerate() {
                    if d_to_p1[i] <= d_to_p2[i] {
                        r1 = r1.max(d_to_p1[i] + e.radius);
                        e.parent_dist = d_to_p1[i];
                        g1.push(e);
                    } else {
                        r2 = r2.max(d_to_p2[i] + e.radius);
                        e.parent_dist = d_to_p2[i];
                        g2.push(e);
                    }
                }
                self.nodes[node as usize] = Node::Internal(g1);
                let idx2 = self.nodes.len() as u32;
                self.nodes.push(Node::Internal(g2));
                Some((
                    RoutingEntry {
                        pivot: p1,
                        radius: r1,
                        parent_dist: 0,
                        child: node,
                    },
                    RoutingEntry {
                        pivot: p2,
                        radius: r2,
                        parent_dist: 0,
                        child: idx2,
                    },
                ))
            }
        }
    }

    /// Promotes the maximum-distance pair among `ids` (exact over the node)
    /// and returns per-entry distances to both promoted pivots.
    fn promote(
        &mut self,
        store: &RankingStore,
        ids: &[RankingId],
    ) -> (RankingId, RankingId, Vec<u32>, Vec<u32>) {
        let n = ids.len();
        debug_assert!(n >= 2);
        let mut best = (0usize, 1usize, 0u32);
        let mut table = vec![0u32; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = self.dist(store, ids[i], ids[j]);
                table[i * n + j] = d;
                table[j * n + i] = d;
                if d > best.2 {
                    best = (i, j, d);
                }
            }
        }
        let (a, b, _) = best;
        let d1 = (0..n).map(|i| table[a * n + i]).collect();
        let d2 = (0..n).map(|i| table[b * n + i]).collect();
        (ids[a], ids[b], d1, d2)
    }

    /// Range query: every ranking within `theta_raw` of the query.
    pub fn range_query(
        &self,
        store: &RankingStore,
        query_pairs: &[(ItemId, u32)],
        theta_raw: u32,
        stats: &mut QueryStats,
    ) -> Vec<RankingId> {
        let mut out = Vec::new();
        self.query_rec(
            store,
            self.root,
            None,
            query_pairs,
            theta_raw,
            stats,
            &mut out,
        );
        stats.results += out.len() as u64;
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn query_rec(
        &self,
        store: &RankingStore,
        node: u32,
        d_q_parent: Option<u32>,
        qp: &[(ItemId, u32)],
        theta: u32,
        stats: &mut QueryStats,
        out: &mut Vec<RankingId>,
    ) {
        let k = store.k();
        stats.tree_nodes_visited += 1;
        match &self.nodes[node as usize] {
            Node::Leaf(entries) => {
                for e in entries {
                    if !store.is_live(e.id) {
                        continue; // tombstoned: frozen content, never reported
                    }
                    if let Some(dqp) = d_q_parent {
                        if dqp.abs_diff(e.parent_dist) > theta {
                            continue;
                        }
                    }
                    stats.count_distance();
                    let d = footrule_pairs(qp, store.sorted_pairs(e.id), k);
                    if d <= theta {
                        out.push(e.id);
                    }
                }
            }
            Node::Internal(entries) => {
                for e in entries {
                    if let Some(dqp) = d_q_parent {
                        if dqp.abs_diff(e.parent_dist) > theta + e.radius {
                            continue;
                        }
                    }
                    stats.count_distance();
                    let d = footrule_pairs(qp, store.sorted_pairs(e.pivot), k);
                    if d <= theta + e.radius {
                        self.query_rec(store, e.child, Some(d), qp, theta, stats, out);
                    }
                }
            }
        }
    }

    /// Best-first KNN: the `k_neighbours` nearest rankings as ascending
    /// `(distance, id)` pairs — the exact lexicographic top-k, ties at
    /// the k-th distance resolving to smallest ids (see [`crate::knn`]).
    pub fn knn(
        &self,
        store: &RankingStore,
        query_pairs: &[(ItemId, u32)],
        k_neighbours: usize,
        stats: &mut QueryStats,
    ) -> Vec<(u32, RankingId)> {
        let mut heap = crate::knn::KnnHeap::new(k_neighbours);
        self.knn_rec(store, self.root, None, query_pairs, &mut heap, stats);
        heap.into_sorted()
    }

    fn knn_rec(
        &self,
        store: &RankingStore,
        node: u32,
        d_q_parent: Option<u32>,
        qp: &[(ItemId, u32)],
        heap: &mut crate::knn::KnnHeap,
        stats: &mut QueryStats,
    ) {
        let k = store.k();
        stats.tree_nodes_visited += 1;
        match &self.nodes[node as usize] {
            Node::Leaf(entries) => {
                for e in entries {
                    if !store.is_live(e.id) {
                        continue; // tombstoned: never occupies a heap slot
                    }
                    if let Some(dqp) = d_q_parent {
                        if dqp.abs_diff(e.parent_dist) > heap.tau() {
                            continue;
                        }
                    }
                    stats.count_distance();
                    let d = footrule_pairs(qp, store.sorted_pairs(e.id), k);
                    heap.offer(d, e.id);
                }
            }
            Node::Internal(entries) => {
                // Routing pivots are duplicates of leaf-resident rankings:
                // they steer the descent but are never offered to the heap
                // (otherwise ids could be reported twice).
                for e in entries {
                    if let Some(dqp) = d_q_parent {
                        if dqp.abs_diff(e.parent_dist) > heap.tau().saturating_add(e.radius) {
                            continue;
                        }
                    }
                    stats.count_distance();
                    let d = footrule_pairs(qp, store.sorted_pairs(e.pivot), k);
                    if d.saturating_sub(e.radius) <= heap.tau() {
                        self.knn_rec(store, e.child, Some(d), qp, heap, stats);
                    }
                }
            }
        }
    }

    /// Depth of the tree (1 for a single leaf). All leaves share this depth.
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut cur = self.root;
        loop {
            match &self.nodes[cur as usize] {
                Node::Leaf(_) => return d,
                Node::Internal(es) => {
                    cur = es[0].child;
                    d += 1;
                }
            }
        }
    }

    /// Approximate heap footprint in bytes (Table 6 reporting).
    pub fn heap_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self
                .nodes
                .iter()
                .map(|n| match n {
                    Node::Leaf(es) => es.capacity() * std::mem::size_of::<LeafEntry>(),
                    Node::Internal(es) => es.capacity() * std::mem::size_of::<RoutingEntry>(),
                })
                .sum::<usize>()
    }

    /// Decomposes the tree into its flat persistence form: a per-node
    /// kind array plus one CSR arena of entries split into four `u32`
    /// planes — `(id, parent_dist, 0, 0)` for leaf entries and
    /// `(pivot, radius, parent_dist, child)` for routing entries.
    #[doc(hidden)]
    pub fn export_parts(&self) -> MTreeParts {
        let total: usize = self
            .nodes
            .iter()
            .map(|n| match n {
                Node::Leaf(es) => es.len(),
                Node::Internal(es) => es.len(),
            })
            .sum();
        let mut parts = MTreeParts {
            root: self.root,
            capacity: self.capacity as u32,
            node_kinds: Vec::with_capacity(self.nodes.len()),
            entry_offsets: Vec::with_capacity(self.nodes.len() + 1),
            entry_a: Vec::with_capacity(total),
            entry_b: Vec::with_capacity(total),
            entry_c: Vec::with_capacity(total),
            entry_d: Vec::with_capacity(total),
        };
        parts.entry_offsets.push(0);
        for n in &self.nodes {
            match n {
                Node::Leaf(es) => {
                    parts.node_kinds.push(0);
                    for e in es {
                        parts.entry_a.push(e.id.0);
                        parts.entry_b.push(e.parent_dist);
                        parts.entry_c.push(0);
                        parts.entry_d.push(0);
                    }
                }
                Node::Internal(es) => {
                    parts.node_kinds.push(1);
                    for e in es {
                        parts.entry_a.push(e.pivot.0);
                        parts.entry_b.push(e.radius);
                        parts.entry_c.push(e.parent_dist);
                        parts.entry_d.push(e.child);
                    }
                }
            }
            parts.entry_offsets.push(parts.entry_a.len() as u32);
        }
        parts
    }

    /// Rebuilds the tree from its flat persistence form, validating node
    /// kinds, the CSR, child bounds and single-parent reachability from
    /// the root (`build_distance_calls` resets to 0; `len` is recomputed
    /// from the leaf entries).
    #[doc(hidden)]
    pub fn from_parts(parts: MTreeParts) -> Result<Self, String> {
        let n = parts.node_kinds.len();
        if parts.entry_offsets.len() != n + 1 {
            return Err("M-tree entry offsets disagree with node count".into());
        }
        if parts.entry_offsets.first().copied().unwrap_or(0) != 0
            || parts.entry_offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err("M-tree entry offsets not monotone from 0".into());
        }
        let total = parts.entry_offsets.last().copied().unwrap_or(0) as usize;
        if parts.entry_a.len() != total
            || parts.entry_b.len() != total
            || parts.entry_c.len() != total
            || parts.entry_d.len() != total
        {
            return Err("M-tree entry planes disagree with offsets".into());
        }
        if parts.capacity < 4 {
            return Err(format!("M-tree node capacity {} below 4", parts.capacity));
        }
        if n == 0 || parts.root as usize >= n {
            return Err("M-tree root inconsistent with node count".into());
        }
        if let Some(bad) = parts.node_kinds.iter().position(|&k| k > 1) {
            return Err(format!("M-tree node {bad} has an unknown kind"));
        }
        // Child links must form a tree rooted at `root` — every node
        // reachable exactly once (cycles would overflow the recursive
        // query paths; `depth()` additionally needs non-empty internals).
        let mut seen = vec![false; n];
        let mut visited = 0usize;
        let mut stack = vec![parts.root];
        while let Some(i) = stack.pop() {
            let i = i as usize;
            if seen[i] {
                return Err(format!("M-tree node {i} reachable twice (cycle)"));
            }
            seen[i] = true;
            visited += 1;
            if parts.node_kinds[i] == 1 {
                let (lo, hi) = (parts.entry_offsets[i], parts.entry_offsets[i + 1]);
                if lo == hi {
                    return Err(format!("M-tree internal node {i} has no entries"));
                }
                for &c in &parts.entry_d[lo as usize..hi as usize] {
                    if c as usize >= n {
                        return Err(format!("M-tree child index {c} out of bounds {n}"));
                    }
                    stack.push(c);
                }
            }
        }
        if visited != n {
            return Err(format!(
                "M-tree has {} nodes unreachable from the root",
                n - visited
            ));
        }
        let mut nodes = Vec::with_capacity(n);
        let mut len = 0usize;
        for i in 0..n {
            let lo = parts.entry_offsets[i] as usize;
            let hi = parts.entry_offsets[i + 1] as usize;
            if parts.node_kinds[i] == 0 {
                len += hi - lo;
                nodes.push(Node::Leaf(
                    (lo..hi)
                        .map(|j| LeafEntry {
                            id: RankingId(parts.entry_a[j]),
                            parent_dist: parts.entry_b[j],
                        })
                        .collect(),
                ));
            } else {
                nodes.push(Node::Internal(
                    (lo..hi)
                        .map(|j| RoutingEntry {
                            pivot: RankingId(parts.entry_a[j]),
                            radius: parts.entry_b[j],
                            parent_dist: parts.entry_c[j],
                            child: parts.entry_d[j],
                        })
                        .collect(),
                ));
            }
        }
        Ok(MTree {
            nodes,
            root: parts.root,
            capacity: parts.capacity as usize,
            len,
            build_distance_calls: 0,
        })
    }
}

/// Flat persistence form of an [`MTree`] (see [`MTree::export_parts`]).
#[doc(hidden)]
#[derive(Debug, Clone)]
pub struct MTreeParts {
    pub root: u32,
    pub capacity: u32,
    pub node_kinds: Vec<u8>,
    pub entry_offsets: Vec<u32>,
    pub entry_a: Vec<u32>,
    pub entry_b: Vec<u32>,
    pub entry_c: Vec<u32>,
    pub entry_d: Vec<u32>,
}

impl Default for MTree {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_store;
    use crate::{linear_scan, query_pairs};

    #[test]
    fn range_query_matches_linear_scan() {
        let store = random_store(400, 7, 60, 21);
        let tree = MTree::build(&store);
        assert_eq!(tree.len(), 400);
        for (qid, theta) in [(0u32, 0u32), (3, 8), (42, 20), (200, 36), (399, 56)] {
            let q = query_pairs(store.items(RankingId(qid)));
            let mut s1 = QueryStats::new();
            let mut s2 = QueryStats::new();
            let mut expect = linear_scan(&store, &q, theta, &mut s1);
            let mut got = tree.range_query(&store, &q, theta, &mut s2);
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expect, "qid={qid} θ={theta}");
        }
    }

    #[test]
    fn tree_is_balanced() {
        // All leaves at the same depth: verify by walking every path.
        let store = random_store(500, 6, 50, 13);
        let tree = MTree::build(&store);
        fn leaf_depths(t: &MTree, node: u32, d: usize, out: &mut Vec<usize>) {
            match &t.nodes[node as usize] {
                Node::Leaf(_) => out.push(d),
                Node::Internal(es) => {
                    for e in es {
                        leaf_depths(t, e.child, d + 1, out);
                    }
                }
            }
        }
        let mut depths = Vec::new();
        leaf_depths(&tree, tree.root, 1, &mut depths);
        assert!(
            depths.windows(2).all(|w| w[0] == w[1]),
            "unbalanced: {depths:?}"
        );
        assert!(tree.depth() > 1, "500 entries must split at least once");
    }

    #[test]
    fn covering_radii_are_sound() {
        // Every ranking reachable below a routing entry lies within the
        // entry's covering radius of its pivot.
        let store = random_store(300, 6, 40, 17);
        let tree = MTree::build(&store);
        fn collect(t: &MTree, node: u32, out: &mut Vec<RankingId>) {
            match &t.nodes[node as usize] {
                Node::Leaf(es) => out.extend(es.iter().map(|e| e.id)),
                Node::Internal(es) => {
                    for e in es {
                        collect(t, e.child, out);
                    }
                }
            }
        }
        fn check(t: &MTree, store: &RankingStore, node: u32) {
            if let Node::Internal(es) = &t.nodes[node as usize] {
                for e in es {
                    let mut members = Vec::new();
                    collect(t, e.child, &mut members);
                    for m in members {
                        let d = ranksim_rankings::footrule_store(store, e.pivot, m);
                        assert!(d <= e.radius, "member outside covering radius");
                    }
                    check(t, store, e.child);
                }
            }
        }
        check(&tree, &store, tree.root);
    }

    #[test]
    fn duplicates_supported() {
        let mut store = RankingStore::new(3);
        for _ in 0..40 {
            store.push_items_unchecked(&[1, 2, 3].map(ItemId));
        }
        let tree = MTree::build(&store);
        let q = query_pairs(&[1, 2, 3].map(ItemId));
        let mut stats = QueryStats::new();
        assert_eq!(tree.range_query(&store, &q, 0, &mut stats).len(), 40);
    }

    #[test]
    fn incremental_insert_and_tombstones_track_the_live_corpus() {
        // The native M-tree insert path doubles as the live-corpus append
        // path: inserts after the bulk build plus tombstone filtering at
        // the leaves must keep range and KNN exactly on the oracle.
        let mut store = random_store(250, 6, 45, 23);
        let mut tree = MTree::build(&store);
        for id in (1..250u32).step_by(4) {
            assert!(store.remove(RankingId(id)));
        }
        for i in 0..30u32 {
            let base = 2000 + i * 6;
            let id = store.push_items_unchecked(
                &[base, base + 1, base + 2, base + 3, base + 4, base + 5].map(ItemId),
            );
            tree.insert(&store, id);
        }
        assert_eq!(tree.len(), 280, "len counts inserted incl. tombstoned");
        for qid in [0u32, 123, 249, 260, 279] {
            let q = query_pairs(store.items(RankingId(qid)));
            let mut s1 = QueryStats::new();
            let mut s2 = QueryStats::new();
            let mut expect = linear_scan(&store, &q, 20, &mut s1);
            let mut got = tree.range_query(&store, &q, 20, &mut s2);
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expect, "range qid={qid}");
            let kexp = crate::knn::knn_linear(&store, &q, 6, &mut s1);
            let kgot = tree.knn(&store, &q, 6, &mut s2);
            assert_eq!(kgot, kexp, "knn qid={qid}");
        }
    }

    #[test]
    fn parts_round_trip_preserves_answers() {
        let mut store = random_store(260, 6, 45, 51);
        let mut tree = MTree::build(&store);
        for id in (2..260u32).step_by(6) {
            store.remove(RankingId(id));
        }
        for i in 0..10u32 {
            let base = 4000 + i * 6;
            let id = store.push_items_unchecked(
                &[base, base + 1, base + 2, base + 3, base + 4, base + 5].map(ItemId),
            );
            tree.insert(&store, id);
        }
        let reloaded = MTree::from_parts(tree.export_parts()).expect("round trip");
        assert_eq!(reloaded.len(), tree.len());
        assert_eq!(reloaded.depth(), tree.depth());
        for qid in [0u32, 99, 259, 265] {
            let q = query_pairs(store.items(RankingId(qid)));
            let mut s1 = QueryStats::new();
            let mut s2 = QueryStats::new();
            assert_eq!(
                reloaded.range_query(&store, &q, 18, &mut s1),
                tree.range_query(&store, &q, 18, &mut s2),
                "range qid={qid}"
            );
            assert_eq!(
                reloaded.knn(&store, &q, 5, &mut s1),
                tree.knn(&store, &q, 5, &mut s2),
                "knn qid={qid}"
            );
        }
        // A child link bent back to the root is rejected, not recursed.
        let mut bad = tree.export_parts();
        if let Some(j) = (0..bad.node_kinds.len())
            .filter(|&i| bad.node_kinds[i] == 1)
            .map(|i| bad.entry_offsets[i] as usize)
            .next()
        {
            bad.entry_d[j] = bad.root;
            assert!(MTree::from_parts(bad).is_err());
        }
    }

    #[test]
    fn empty_tree() {
        let store = RankingStore::new(3);
        let tree = MTree::new();
        let q = query_pairs(&[1, 2, 3].map(ItemId));
        let mut stats = QueryStats::new();
        assert!(tree.range_query(&store, &q, 10, &mut stats).is_empty());
    }
}
