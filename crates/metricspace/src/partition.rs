//! Fixed-radius partitionings of a ranking corpus (paper Section 4.1).
//!
//! A partitioning groups the corpus into disjoint partitions `P_i`, each
//! represented by a medoid `τ_m ∈ P_i` with the guarantee
//! `∀τ ∈ P_i: d(τ_m, τ) ≤ θ_C`. Two constructions are provided:
//!
//! * [`BkPartitioner`] — the paper's scheme (Figure 1): build one BK-tree
//!   over the corpus, then walk it top-down. At each medoid node, subtrees
//!   under edges `≤ θ_C` join the partition wholesale (the BK invariant
//!   makes every such node lie at distance exactly the edge label from the
//!   medoid); children under larger edges recursively become medoids. The
//!   partitions *are* BK-subtrees, so validating a partition against the
//!   original query threshold is a plain BK range query — no extra index
//!   is built and no extra distance calls are spent.
//! * [`RandomMedoidPartitioner`] — Chávez & Navarro (2005): repeatedly pick
//!   a random unassigned ranking as medoid and assign every unassigned
//!   ranking within `θ_C` to it. This is the process the paper's
//!   coupon-collector cost model describes; the cost-model tests validate
//!   the predicted medoid count against this construction.

use crate::bktree::BkTree;
use ranksim_rankings::{footrule_pairs, ItemId, QueryStats, RankingId, RankingStore};

/// How a partition's non-medoid members are stored.
#[derive(Debug, Clone)]
pub enum PartitionMembers {
    /// Arena indices of BK-subtree roots inside the shared tree
    /// (the partitioning's shared arena). Every node of every listed subtree is a
    /// member.
    BkSubtrees(Vec<u32>),
    /// A standalone BK-tree holding the members (random-medoid scheme).
    Tree(BkTree),
}

/// One partition: a medoid plus its members within `θ_C`.
#[derive(Debug, Clone)]
pub struct Partition {
    /// The representative ranking indexed by the coarse inverted index.
    pub medoid: RankingId,
    /// The represented rankings (excluding the medoid itself).
    pub members: PartitionMembers,
    /// Total partition size including the medoid.
    pub size: u32,
    /// Arena index of the medoid's node inside the shared BK arena
    /// (`BkSubtrees` partitions); the anchor of the incremental
    /// member-append path. `None` for `Tree` partitions.
    pub medoid_node: Option<u32>,
}

/// A disjoint fixed-radius partitioning of a corpus.
#[derive(Debug, Clone)]
pub struct Partitioning {
    theta_c_raw: u32,
    /// Shared BK-tree arena backing `PartitionMembers::BkSubtrees`.
    arena: Option<BkTree>,
    partitions: Vec<Partition>,
    /// Distance evaluations spent on construction (Table 6 reporting).
    pub build_distance_calls: u64,
}

impl Partitioning {
    /// The partitioning radius in raw Footrule units.
    pub fn theta_c_raw(&self) -> u32 {
        self.theta_c_raw
    }

    /// Number of partitions (= number of medoids).
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// The partitions.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Iterator over the medoid rankings.
    pub fn medoids(&self) -> impl Iterator<Item = RankingId> + '_ {
        self.partitions.iter().map(|p| p.medoid)
    }

    /// Sum of partition sizes — equals the corpus size for a valid
    /// partitioning (asserted by tests).
    pub fn total_members(&self) -> usize {
        self.partitions.iter().map(|p| p.size as usize).sum()
    }

    /// Validates partition `pi` against the *original* query threshold:
    /// appends every member (medoid included) within `theta_raw` of the
    /// query to `out`.
    ///
    /// `medoid_dist` lets the caller pass the medoid distance already
    /// computed during the filtering phase, avoiding a duplicate distance
    /// call — the saving behind Coarse's sub-result-size DFC counts in
    /// Figure 10.
    #[allow(clippy::too_many_arguments)]
    pub fn validate_into(
        &self,
        store: &RankingStore,
        pi: usize,
        query_pairs: &[(ItemId, u32)],
        theta_raw: u32,
        medoid_dist: Option<u32>,
        stats: &mut QueryStats,
        out: &mut Vec<RankingId>,
    ) {
        let mut stack = Vec::new();
        self.validate_into_with(
            store,
            pi,
            query_pairs,
            theta_raw,
            medoid_dist,
            &mut stack,
            stats,
            out,
        );
    }

    /// Like [`Partitioning::validate_into`] but traversing the partition's
    /// BK-subtrees through a caller-owned `stack` buffer, so repeated
    /// validations allocate nothing.
    #[allow(clippy::too_many_arguments)]
    pub fn validate_into_with(
        &self,
        store: &RankingStore,
        pi: usize,
        query_pairs: &[(ItemId, u32)],
        theta_raw: u32,
        medoid_dist: Option<u32>,
        stack: &mut Vec<u32>,
        stats: &mut QueryStats,
        out: &mut Vec<RankingId>,
    ) {
        let p = &self.partitions[pi];
        let d_medoid = match medoid_dist {
            Some(d) => d,
            None => {
                stats.count_distance();
                footrule_pairs(query_pairs, store.sorted_pairs(p.medoid), store.k())
            }
        };
        // A tombstoned medoid keeps representing its partition (frozen
        // content, exact bounds) but is never reported itself.
        if d_medoid <= theta_raw && store.is_live(p.medoid) {
            out.push(p.medoid);
        }
        match &p.members {
            PartitionMembers::BkSubtrees(roots) => {
                let arena = self
                    .arena
                    .as_ref()
                    .expect("BkSubtrees partition without arena");
                for &r in roots {
                    arena.range_query_from_with(
                        store,
                        r,
                        query_pairs,
                        theta_raw,
                        stack,
                        stats,
                        out,
                    );
                }
            }
            PartitionMembers::Tree(tree) => {
                if let Some(root) = tree.root() {
                    tree.range_query_from_with(
                        store,
                        root,
                        query_pairs,
                        theta_raw,
                        stack,
                        stats,
                        out,
                    );
                }
            }
        }
    }

    /// Appends ranking `id` to partition `pi` — the incremental insert
    /// path of a live corpus. The caller must have verified the radius
    /// invariant `d(medoid, id) ≤ θ_C`. `BkSubtrees` partitions route the
    /// new ranking from the medoid's arena node (any new direct child
    /// edge `≤ θ_C` becomes an additional subtree root); `Tree`
    /// partitions insert into their standalone tree.
    pub fn insert_member(&mut self, store: &RankingStore, pi: usize, id: RankingId) {
        debug_assert!(
            ranksim_rankings::footrule_store(store, self.partitions[pi].medoid, id)
                <= self.theta_c_raw,
            "insert_member caller must uphold the radius invariant"
        );
        let medoid_node = self.partitions[pi].medoid_node;
        match medoid_node {
            Some(mnode) => {
                let arena = self.arena.as_mut().expect("BkSubtrees partition w/o arena");
                let had_children = arena.node(mnode).children.len();
                let new_idx = arena.insert_under(store, mnode, id);
                let p = &mut self.partitions[pi];
                if arena.node(mnode).children.len() > had_children {
                    // The insert opened a fresh edge directly under the
                    // medoid: the new node roots a new member subtree.
                    if let PartitionMembers::BkSubtrees(roots) = &mut p.members {
                        roots.push(new_idx);
                    }
                }
                p.size += 1;
            }
            None => {
                let p = &mut self.partitions[pi];
                if let PartitionMembers::Tree(tree) = &mut p.members {
                    tree.insert(store, id);
                    p.size += 1;
                } else {
                    unreachable!("partition without medoid_node must hold a Tree");
                }
            }
        }
    }

    /// Opens a fresh partition with `id` as its medoid (and sole member)
    /// — the insert path when no existing medoid covers the new ranking.
    /// Returns the new partition's index.
    pub fn push_partition(&mut self, id: RankingId) -> usize {
        self.partitions.push(Partition {
            medoid: id,
            members: PartitionMembers::Tree(BkTree::new()),
            size: 1,
            medoid_node: None,
        });
        self.partitions.len() - 1
    }

    /// Collects all member ids of partition `pi` (medoid first).
    pub fn members_of(&self, pi: usize) -> Vec<RankingId> {
        let p = &self.partitions[pi];
        let mut out = vec![p.medoid];
        match &p.members {
            PartitionMembers::BkSubtrees(roots) => {
                let arena = self.arena.as_ref().expect("missing arena");
                for &r in roots {
                    arena.collect_subtree(r, &mut out);
                }
            }
            PartitionMembers::Tree(tree) => {
                if let Some(root) = tree.root() {
                    tree.collect_subtree(root, &mut out);
                }
            }
        }
        out
    }

    /// Approximate heap footprint in bytes (Table 6 reporting).
    pub fn heap_bytes(&self) -> usize {
        let arena = self.arena.as_ref().map(|a| a.heap_bytes()).unwrap_or(0);
        let parts: usize = self
            .partitions
            .iter()
            .map(|p| {
                std::mem::size_of::<Partition>()
                    + match &p.members {
                        PartitionMembers::BkSubtrees(v) => v.capacity() * 4,
                        PartitionMembers::Tree(t) => t.heap_bytes(),
                    }
            })
            .sum();
        arena + parts
    }

    /// Decomposes the partitioning into its flat persistence form: the
    /// shared arena (if any) and each standalone partition tree as
    /// [`BkTreeParts`], the per-partition scalars as parallel arrays, and
    /// all subtree-root lists in one CSR plane.
    #[doc(hidden)]
    pub fn export_parts(&self) -> PartitioningParts {
        let np = self.partitions.len();
        let mut parts = PartitioningParts {
            theta_c_raw: self.theta_c_raw,
            arena: self.arena.as_ref().map(|a| a.export_parts()),
            medoids: Vec::with_capacity(np),
            sizes: Vec::with_capacity(np),
            medoid_nodes: Vec::with_capacity(np),
            root_offsets: Vec::with_capacity(np + 1),
            roots: Vec::new(),
            trees: Vec::new(),
        };
        parts.root_offsets.push(0);
        for p in &self.partitions {
            parts.medoids.push(p.medoid.0);
            parts.sizes.push(p.size);
            parts.medoid_nodes.push(p.medoid_node.unwrap_or(u32::MAX));
            match &p.members {
                PartitionMembers::BkSubtrees(roots) => parts.roots.extend_from_slice(roots),
                PartitionMembers::Tree(tree) => parts.trees.push(tree.export_parts()),
            }
            parts.root_offsets.push(parts.roots.len() as u32);
        }
        parts
    }

    /// Rebuilds a partitioning from its flat persistence form, validating
    /// the per-partition invariants (arena presence, medoid-node and
    /// subtree-root bounds, standalone-tree count).
    #[doc(hidden)]
    pub fn from_parts(parts: PartitioningParts) -> Result<Self, String> {
        let np = parts.medoids.len();
        if parts.sizes.len() != np
            || parts.medoid_nodes.len() != np
            || parts.root_offsets.len() != np + 1
        {
            return Err("partitioning per-partition arrays disagree in length".into());
        }
        if parts.root_offsets.first().copied().unwrap_or(0) != 0
            || parts.root_offsets.windows(2).any(|w| w[0] > w[1])
            || parts.root_offsets.last().copied().unwrap_or(0) as usize != parts.roots.len()
        {
            return Err("partitioning subtree-root offsets are not a valid CSR".into());
        }
        let arena = match parts.arena {
            Some(a) => Some(BkTree::from_parts(a)?),
            None => None,
        };
        let arena_len = arena.as_ref().map(|a| a.len()).unwrap_or(0);
        let mut trees = parts.trees.into_iter();
        let mut partitions = Vec::with_capacity(np);
        for i in 0..np {
            let lo = parts.root_offsets[i] as usize;
            let hi = parts.root_offsets[i + 1] as usize;
            let mnode = parts.medoid_nodes[i];
            let members = if mnode != u32::MAX {
                // Arena-backed partition: medoid node and subtree roots
                // must be valid arena indices.
                if mnode as usize >= arena_len {
                    return Err(format!("partition {i} medoid node outside the arena"));
                }
                let roots = parts.roots[lo..hi].to_vec();
                if roots.iter().any(|&r| r as usize >= arena_len) {
                    return Err(format!("partition {i} subtree root outside the arena"));
                }
                PartitionMembers::BkSubtrees(roots)
            } else {
                if lo != hi {
                    return Err(format!("partition {i} mixes a standalone tree with roots"));
                }
                PartitionMembers::Tree(
                    trees
                        .next()
                        .map(BkTree::from_parts)
                        .transpose()?
                        .ok_or_else(|| format!("partition {i} missing its standalone tree"))?,
                )
            };
            partitions.push(Partition {
                medoid: RankingId(parts.medoids[i]),
                members,
                size: parts.sizes[i],
                medoid_node: (mnode != u32::MAX).then_some(mnode),
            });
        }
        if trees.next().is_some() {
            return Err("partitioning has more standalone trees than Tree partitions".into());
        }
        Ok(Partitioning {
            theta_c_raw: parts.theta_c_raw,
            arena,
            partitions,
            build_distance_calls: 0,
        })
    }
}

/// Flat persistence form of a [`Partitioning`] (see
/// [`Partitioning::export_parts`]). `u32::MAX` encodes an absent medoid
/// node (standalone-tree partitions).
#[doc(hidden)]
#[derive(Debug, Clone)]
pub struct PartitioningParts {
    pub theta_c_raw: u32,
    pub arena: Option<crate::bktree::BkTreeParts>,
    pub medoids: Vec<u32>,
    pub sizes: Vec<u32>,
    pub medoid_nodes: Vec<u32>,
    pub root_offsets: Vec<u32>,
    pub roots: Vec<u32>,
    pub trees: Vec<crate::bktree::BkTreeParts>,
}

/// The paper's BK-subtree partitioner (Section 4.1, Figure 1).
pub struct BkPartitioner;

impl BkPartitioner {
    /// Builds a BK-tree over the full store and partitions it at `θ_C`.
    pub fn partition(store: &RankingStore, theta_c_raw: u32) -> Partitioning {
        let tree = BkTree::build(store);
        Self::partition_tree(tree, theta_c_raw)
    }

    /// Partitions an already-built BK-tree (the tree must cover the corpus
    /// that subsequent queries will run against).
    pub fn partition_tree(tree: BkTree, theta_c_raw: u32) -> Partitioning {
        let mut partitions = Vec::new();
        let build_distance_calls = tree.build_distance_calls;
        if let Some(root) = tree.root() {
            // Stack of nodes that become medoids.
            let mut medoid_stack = vec![root];
            while let Some(m) = medoid_stack.pop() {
                let node = tree.node(m);
                let mut subtree_roots = Vec::new();
                let mut size = 1u32;
                for &(e, child) in &node.children {
                    if e <= theta_c_raw {
                        size += tree.node(child).subtree_size;
                        subtree_roots.push(child);
                    } else {
                        medoid_stack.push(child);
                    }
                }
                partitions.push(Partition {
                    medoid: node.ranking,
                    members: PartitionMembers::BkSubtrees(subtree_roots),
                    size,
                    medoid_node: Some(m),
                });
            }
        }
        Partitioning {
            theta_c_raw,
            arena: Some(tree),
            partitions,
            build_distance_calls,
        }
    }
}

/// The Chávez–Navarro random-medoid partitioner used by the cost model's
/// derivation.
pub struct RandomMedoidPartitioner {
    seed: u64,
}

impl RandomMedoidPartitioner {
    /// A partitioner with a deterministic medoid-selection seed.
    pub fn new(seed: u64) -> Self {
        RandomMedoidPartitioner { seed }
    }

    /// Partitions the store at radius `θ_C`: random unassigned medoids,
    /// each absorbing every unassigned ranking within the radius.
    pub fn partition(&self, store: &RankingStore, theta_c_raw: u32) -> Partitioning {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut unassigned: Vec<RankingId> = store.live_ids().collect();
        let mut partitions = Vec::new();
        let mut build_distance_calls = 0u64;
        let k = store.k();
        while !unassigned.is_empty() {
            let pick = rng.random_range(0..unassigned.len());
            let medoid = unassigned.swap_remove(pick);
            let mpairs = store.sorted_pairs(medoid);
            let mut members = Vec::new();
            let mut i = 0;
            while i < unassigned.len() {
                build_distance_calls += 1;
                let d = footrule_pairs(mpairs, store.sorted_pairs(unassigned[i]), k);
                if d <= theta_c_raw {
                    members.push(unassigned.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            let size = 1 + members.len() as u32;
            let mut tree = BkTree::new();
            for id in members {
                tree.insert(store, id);
            }
            build_distance_calls += tree.build_distance_calls;
            partitions.push(Partition {
                medoid,
                members: PartitionMembers::Tree(tree),
                size,
                medoid_node: None,
            });
        }
        Partitioning {
            theta_c_raw,
            arena: None,
            partitions,
            build_distance_calls,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_store;
    use crate::{linear_scan, query_pairs};
    use ranksim_rankings::footrule_store;

    fn check_partitioning(store: &RankingStore, p: &Partitioning) {
        // Coverage: every ranking in exactly one partition.
        assert_eq!(p.total_members(), store.len());
        let mut seen = vec![false; store.len()];
        for pi in 0..p.num_partitions() {
            let members = p.members_of(pi);
            assert_eq!(members.len() as u32, p.partitions()[pi].size);
            for m in &members {
                assert!(!seen[m.index()], "ranking {m} in two partitions");
                seen[m.index()] = true;
            }
            // Radius invariant: every member within θ_C of the medoid.
            let medoid = p.partitions()[pi].medoid;
            for m in members {
                assert!(
                    footrule_store(store, medoid, m) <= p.theta_c_raw(),
                    "member outside θ_C"
                );
            }
        }
        assert!(seen.iter().all(|&s| s), "uncovered ranking");
    }

    #[test]
    fn bk_partitioning_is_valid() {
        let store = random_store(250, 6, 40, 3);
        for theta_c in [0u32, 4, 10, 20, 42] {
            let p = BkPartitioner::partition(&store, theta_c);
            check_partitioning(&store, &p);
        }
    }

    #[test]
    fn random_partitioning_is_valid() {
        let store = random_store(200, 6, 40, 5);
        for theta_c in [0u32, 6, 14, 26] {
            let p = RandomMedoidPartitioner::new(99).partition(&store, theta_c);
            check_partitioning(&store, &p);
        }
    }

    #[test]
    fn theta_c_zero_groups_only_duplicates() {
        let mut store = RankingStore::new(3);
        for items in [[1u32, 2, 3], [1, 2, 3], [4, 5, 6], [1, 2, 3]] {
            store.push_items_unchecked(&items.map(ItemId));
        }
        let p = BkPartitioner::partition(&store, 0);
        assert_eq!(p.num_partitions(), 2);
        let sizes: Vec<u32> = {
            let mut s: Vec<u32> = p.partitions().iter().map(|q| q.size).collect();
            s.sort_unstable();
            s
        };
        assert_eq!(sizes, vec![1, 3]);
    }

    #[test]
    fn max_theta_c_yields_single_partition() {
        let store = random_store(100, 5, 25, 7);
        let p = BkPartitioner::partition(&store, store.max_distance());
        assert_eq!(p.num_partitions(), 1);
        assert_eq!(p.partitions()[0].size as usize, store.len());
    }

    #[test]
    fn larger_theta_c_never_increases_medoid_count_bk() {
        let store = random_store(300, 6, 45, 11);
        let mut prev = usize::MAX;
        for theta_c in [0u32, 2, 6, 12, 20, 30, 42] {
            let p = BkPartitioner::partition(&store, theta_c);
            assert!(p.num_partitions() <= prev);
            prev = p.num_partitions();
        }
    }

    #[test]
    fn insert_member_and_push_partition_keep_validation_exact() {
        let mut store = random_store(200, 6, 40, 29);
        let theta_c = 12u32;
        let mut part = BkPartitioner::partition(&store, theta_c);
        // Append 40 fresh rankings through the incremental path: join a
        // covering partition when one exists, else open a new one.
        for i in 0..40u32 {
            let id = if i % 2 == 0 {
                // A near-duplicate of an existing ranking (likely covered).
                let donor = RankingId(i % 200);
                let mut items: Vec<ItemId> = store.items(donor).to_vec();
                items.swap(0, 1);
                store.push_items_unchecked(&items)
            } else {
                let base = 5000 + i * 6;
                store.push_items_unchecked(
                    &[base, base + 1, base + 2, base + 3, base + 4, base + 5].map(ItemId),
                )
            };
            let covering = (0..part.num_partitions())
                .find(|&pi| footrule_store(&store, part.partitions()[pi].medoid, id) <= theta_c);
            match covering {
                Some(pi) => part.insert_member(&store, pi, id),
                None => {
                    part.push_partition(id);
                }
            }
        }
        // Tombstone a few old members and medoids.
        for v in [0u32, 7, 31, 100] {
            store.remove(RankingId(v));
        }
        check_partitioning_live(&store, &part);
        // Validation over all partitions equals the live-corpus scan.
        for qid in [2u32, 205, 239] {
            let q = query_pairs(store.items(RankingId(qid)));
            for theta in [0u32, 10, 22] {
                let mut stats = QueryStats::new();
                let mut expect = linear_scan(&store, &q, theta, &mut stats);
                let mut got = Vec::new();
                for pi in 0..part.num_partitions() {
                    part.validate_into(&store, pi, &q, theta, None, &mut stats, &mut got);
                }
                expect.sort_unstable();
                got.sort_unstable();
                assert_eq!(got, expect, "qid={qid} θ={theta}");
            }
        }
    }

    /// Like `check_partitioning` but for mutated corpora: every live
    /// ranking in exactly one partition, radius invariant on every member.
    fn check_partitioning_live(store: &RankingStore, p: &Partitioning) {
        let mut seen = vec![false; store.len()];
        let mut live_covered = 0usize;
        for pi in 0..p.num_partitions() {
            let medoid = p.partitions()[pi].medoid;
            for m in p.members_of(pi) {
                assert!(!seen[m.index()], "ranking {m} in two partitions");
                seen[m.index()] = true;
                if store.is_live(m) {
                    live_covered += 1;
                }
                assert!(
                    footrule_store(store, medoid, m) <= p.theta_c_raw(),
                    "member outside θ_C"
                );
            }
        }
        assert_eq!(live_covered, store.live_len(), "uncovered live ranking");
    }

    #[test]
    fn validate_into_equals_scan_restricted_to_partition() {
        let store = random_store(220, 6, 40, 13);
        let part = BkPartitioner::partition(&store, 12);
        let q = query_pairs(store.items(RankingId(17)));
        let theta = 18u32;
        let mut stats = QueryStats::new();
        let full = linear_scan(&store, &q, theta, &mut stats);
        let mut via_partitions = Vec::new();
        for pi in 0..part.num_partitions() {
            part.validate_into(&store, pi, &q, theta, None, &mut stats, &mut via_partitions);
        }
        let mut expect = full;
        expect.sort_unstable();
        via_partitions.sort_unstable();
        assert_eq!(via_partitions, expect);
    }

    #[test]
    fn lemma1_no_false_negatives() {
        // Every true result's partition has a medoid within θ + θ_C of the
        // query (Lemma 1): validating only those partitions loses nothing.
        let store = random_store(260, 6, 40, 17);
        let theta_c = 10u32;
        let part = BkPartitioner::partition(&store, theta_c);
        for qid in [0u32, 40, 133] {
            let q = query_pairs(store.items(RankingId(qid)));
            for theta in [6u32, 14, 22] {
                let mut stats = QueryStats::new();
                let truth = linear_scan(&store, &q, theta, &mut stats);
                let mut got = Vec::new();
                for pi in 0..part.num_partitions() {
                    let medoid = part.partitions()[pi].medoid;
                    let dm = footrule_store(&store, RankingId(qid), medoid);
                    if dm <= theta + theta_c {
                        part.validate_into(&store, pi, &q, theta, Some(dm), &mut stats, &mut got);
                    }
                }
                let mut expect = truth;
                expect.sort_unstable();
                got.sort_unstable();
                assert_eq!(got, expect, "qid={qid} θ={theta}");
            }
        }
    }
}
