//! Vantage-point tree (Uhlmann 1991; Yianilos, SODA 1993).
//!
//! Bulk-built binary metric tree: each node picks a vantage point,
//! computes the distances of the remaining set, and splits at the median
//! distance `μ` into an inner (`d ≤ μ`) and outer (`d > μ`) child.
//! Included as the third related-work metric structure and used by the
//! ablation benches to show that the paper's conclusion (inverted indices
//! beat metric trees on this workload) is not an artifact of the BK-tree
//! choice.
//!
//! Top-k Footrule distances are *discrete* (even integers `0..=k(k+1)`)
//! and heavily tied — on sparse corpora most pairs sit exactly at
//! `d_max`. A textbook median split then makes no progress (the inner
//! child receives the whole set), so this implementation (a) builds with
//! an explicit work stack instead of recursion and (b) collapses
//! tied/small sets into **bucket leaves** whose members are scanned at
//! query time.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ranksim_rankings::{footrule_pairs, ItemId, QueryStats, RankingId, RankingStore};

/// Sets of at most this size become bucket leaves.
const LEAF_CAP: usize = 16;

#[derive(Debug, Clone)]
struct VpNode {
    vantage: RankingId,
    /// Median distance: the inner subtree holds points with `d ≤ mu`.
    mu: u32,
    inner: Option<u32>,
    outer: Option<u32>,
    /// Bucket members, each at distance exactly `mu` from `vantage`
    /// (tied split) or arbitrary (small leaf, `mu = u32::MAX` sentinel
    /// unused) — stored with their exact vantage distance.
    bucket: Vec<(u32, RankingId)>,
}

/// A bulk-built vantage-point tree.
///
/// The bulk structure is immutable, but the tree supports a **live
/// corpus** overlay: [`VpTree::insert`] appends to an overflow buffer
/// scanned exactly at query time (a VP split cannot absorb points without
/// re-computing medians), and tombstoned rankings are filtered at
/// emission through [`RankingStore::is_live`] while their frozen content
/// keeps every pruning bound exact. Rebuilding folds the overlay in.
#[derive(Debug, Clone, Default)]
pub struct VpTree {
    nodes: Vec<VpNode>,
    root: Option<u32>,
    len: usize,
    /// Rankings appended after the bulk build; scanned linearly (and
    /// exactly) by every query.
    overflow: Vec<RankingId>,
    /// Distance evaluations spent on construction.
    pub build_distance_calls: u64,
}

/// A unit of deferred construction work: build a subtree over `ids` and
/// patch the parent's child slot.
struct WorkItem {
    ids: Vec<RankingId>,
    parent: Option<(u32, bool)>, // (node index, is_inner)
}

impl VpTree {
    /// Builds a tree over all rankings of `store` (seeded vantage-point
    /// selection for reproducibility).
    pub fn build(store: &RankingStore, seed: u64) -> Self {
        let mut t = VpTree {
            nodes: Vec::with_capacity(store.live_len() / LEAF_CAP * 2 + 1),
            root: None,
            len: store.live_len(),
            overflow: Vec::new(),
            build_distance_calls: 0,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let k = store.k();
        let all: Vec<RankingId> = store.live_ids().collect();
        let mut work = vec![WorkItem {
            ids: all,
            parent: None,
        }];
        while let Some(WorkItem { mut ids, parent }) = work.pop() {
            if ids.is_empty() {
                continue;
            }
            let pick = rng.random_range(0..ids.len());
            ids.swap(0, pick);
            let vantage = ids[0];
            let mut with_d: Vec<(u32, RankingId)> = ids[1..]
                .iter()
                .map(|&id| {
                    t.build_distance_calls += 1;
                    (
                        footrule_pairs(store.sorted_pairs(vantage), store.sorted_pairs(id), k),
                        id,
                    )
                })
                .collect();
            let node_idx = t.nodes.len() as u32;

            // Bucket leaf: small set, or no split progress possible
            // (all remaining equidistant from the vantage).
            let tied = with_d.windows(2).all(|w| w[0].0 == w[1].0);
            if with_d.len() <= LEAF_CAP || tied {
                let mu = with_d.first().map(|&(d, _)| d).unwrap_or(0);
                t.nodes.push(VpNode {
                    vantage,
                    mu,
                    inner: None,
                    outer: None,
                    bucket: with_d,
                });
            } else {
                let mid = (with_d.len() - 1) / 2;
                with_d.select_nth_unstable_by_key(mid, |&(d, _)| d);
                let mu = with_d[mid].0;
                let mut inner_ids = Vec::with_capacity(mid + 1);
                let mut outer_ids = Vec::new();
                for (d, id) in with_d {
                    if d <= mu {
                        inner_ids.push(id);
                    } else {
                        outer_ids.push(id);
                    }
                }
                t.nodes.push(VpNode {
                    vantage,
                    mu,
                    inner: None,
                    outer: None,
                    bucket: Vec::new(),
                });
                // `outer` can be empty when ties cross the median; the
                // tie-detection above guarantees `inner` made progress.
                work.push(WorkItem {
                    ids: inner_ids,
                    parent: Some((node_idx, true)),
                });
                work.push(WorkItem {
                    ids: outer_ids,
                    parent: Some((node_idx, false)),
                });
            }
            match parent {
                None => t.root = Some(node_idx),
                Some((p, true)) => t.nodes[p as usize].inner = Some(node_idx),
                Some((p, false)) => t.nodes[p as usize].outer = Some(node_idx),
            }
        }
        t
    }

    /// Number of rankings inserted into the tree (bulk + overflow,
    /// including any that were tombstoned afterwards).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends ranking `id` to the overflow buffer — the incremental
    /// insert path. Overflow entries are scanned linearly (and exactly)
    /// by every query until the tree is rebuilt; removal needs no tree
    /// operation at all (tombstone filtering via the store).
    pub fn insert(&mut self, id: RankingId) {
        self.overflow.push(id);
        self.len += 1;
    }

    /// Number of overflow entries awaiting the next rebuild.
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// Range query: every ranking within `theta_raw` of the query.
    pub fn range_query(
        &self,
        store: &RankingStore,
        query_pairs: &[(ItemId, u32)],
        theta_raw: u32,
        stats: &mut QueryStats,
    ) -> Vec<RankingId> {
        let mut out = Vec::new();
        let k = store.k();
        // Overflow entries (post-build inserts): exact linear pass.
        for &id in &self.overflow {
            if !store.is_live(id) {
                continue;
            }
            stats.count_distance();
            if footrule_pairs(query_pairs, store.sorted_pairs(id), k) <= theta_raw {
                out.push(id);
            }
        }
        let mut stack: Vec<u32> = Vec::new();
        if let Some(r) = self.root {
            stack.push(r);
        }
        while let Some(idx) = stack.pop() {
            let node = &self.nodes[idx as usize];
            stats.tree_nodes_visited += 1;
            stats.count_distance();
            let d = footrule_pairs(query_pairs, store.sorted_pairs(node.vantage), k);
            if d <= theta_raw && store.is_live(node.vantage) {
                out.push(node.vantage);
            }
            // Bucket members: prune by the stored vantage distance
            // (triangle inequality), evaluate the survivors.
            for &(dv, id) in &node.bucket {
                if d.abs_diff(dv) > theta_raw || !store.is_live(id) {
                    continue;
                }
                stats.count_distance();
                if footrule_pairs(query_pairs, store.sorted_pairs(id), k) <= theta_raw {
                    out.push(id);
                }
            }
            // Inner holds d(x, v) ≤ mu: reachable iff d − θ ≤ mu.
            if let Some(inner) = node.inner {
                if d.saturating_sub(theta_raw) <= node.mu {
                    stack.push(inner);
                }
            }
            // Outer holds d(x, v) > mu: reachable iff d + θ > mu.
            if let Some(outer) = node.outer {
                if d + theta_raw > node.mu {
                    stack.push(outer);
                }
            }
        }
        stats.results += out.len() as u64;
        out
    }

    /// Best-first KNN traversal feeding `heap` (see [`crate::knn`]).
    pub(crate) fn knn_into(
        &self,
        store: &RankingStore,
        query_pairs: &[(ItemId, u32)],
        heap: &mut crate::knn::KnnHeap,
        stats: &mut QueryStats,
    ) {
        let k = store.k();
        for &id in &self.overflow {
            if !store.is_live(id) {
                continue;
            }
            stats.count_distance();
            heap.offer(footrule_pairs(query_pairs, store.sorted_pairs(id), k), id);
        }
        let mut stack: Vec<u32> = Vec::new();
        if let Some(r) = self.root {
            stack.push(r);
        }
        while let Some(idx) = stack.pop() {
            let node = &self.nodes[idx as usize];
            stats.tree_nodes_visited += 1;
            stats.count_distance();
            let d = footrule_pairs(query_pairs, store.sorted_pairs(node.vantage), k);
            if store.is_live(node.vantage) {
                heap.offer(d, node.vantage);
            }
            for &(dv, id) in &node.bucket {
                if d.abs_diff(dv) > heap.tau() || !store.is_live(id) {
                    continue;
                }
                stats.count_distance();
                let d2 = footrule_pairs(query_pairs, store.sorted_pairs(id), k);
                heap.offer(d2, id);
            }
            let tau = heap.tau();
            if let Some(inner) = node.inner {
                if d.saturating_sub(tau) <= node.mu {
                    stack.push(inner);
                }
            }
            if let Some(outer) = node.outer {
                if d.saturating_add(tau) > node.mu {
                    stack.push(outer);
                }
            }
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<VpNode>()
            + self.overflow.capacity() * std::mem::size_of::<RankingId>()
            + self
                .nodes
                .iter()
                .map(|n| n.bucket.capacity() * std::mem::size_of::<(u32, RankingId)>())
                .sum::<usize>()
    }

    /// Decomposes the tree into its flat persistence form: parallel
    /// per-node arrays (child links as `u32::MAX`-for-none), one CSR
    /// arena over the bucket members split into distance/id planes, and
    /// the overflow buffer.
    #[doc(hidden)]
    pub fn export_parts(&self) -> VpTreeParts {
        let total: usize = self.nodes.iter().map(|n| n.bucket.len()).sum();
        let mut parts = VpTreeParts {
            root: self.root.unwrap_or(u32::MAX),
            vantages: Vec::with_capacity(self.nodes.len()),
            mus: Vec::with_capacity(self.nodes.len()),
            inners: Vec::with_capacity(self.nodes.len()),
            outers: Vec::with_capacity(self.nodes.len()),
            bucket_offsets: Vec::with_capacity(self.nodes.len() + 1),
            bucket_dists: Vec::with_capacity(total),
            bucket_ids: Vec::with_capacity(total),
            overflow: self.overflow.iter().map(|id| id.0).collect(),
        };
        parts.bucket_offsets.push(0);
        for n in &self.nodes {
            parts.vantages.push(n.vantage.0);
            parts.mus.push(n.mu);
            parts.inners.push(n.inner.unwrap_or(u32::MAX));
            parts.outers.push(n.outer.unwrap_or(u32::MAX));
            for &(d, id) in &n.bucket {
                parts.bucket_dists.push(d);
                parts.bucket_ids.push(id.0);
            }
            parts.bucket_offsets.push(parts.bucket_dists.len() as u32);
        }
        parts
    }

    /// Rebuilds the tree from its flat persistence form, validating the
    /// CSR and child-link invariants and that every node is reachable
    /// from the root exactly once (`build_distance_calls` resets to 0;
    /// `len` is recomputed from the node, bucket and overflow counts).
    #[doc(hidden)]
    pub fn from_parts(parts: VpTreeParts) -> Result<Self, String> {
        let n = parts.vantages.len();
        if parts.mus.len() != n
            || parts.inners.len() != n
            || parts.outers.len() != n
            || parts.bucket_offsets.len() != n + 1
        {
            return Err("VP-tree node arrays disagree in length".into());
        }
        if parts.bucket_offsets.first().copied().unwrap_or(0) != 0
            || parts.bucket_offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err("VP-tree bucket offsets not monotone from 0".into());
        }
        let total = parts.bucket_offsets.last().copied().unwrap_or(0) as usize;
        if parts.bucket_dists.len() != total || parts.bucket_ids.len() != total {
            return Err("VP-tree bucket arena length disagrees with offsets".into());
        }
        let root = (parts.root != u32::MAX).then_some(parts.root);
        match root {
            Some(r) if (r as usize) < n => {}
            None if n == 0 => {}
            _ => return Err("VP-tree root inconsistent with node count".into()),
        }
        // Child links must form a tree rooted at `root`: every node
        // reachable exactly once (a cycle would hang the query stack).
        let mut seen = vec![false; n];
        let mut visited = 0usize;
        let mut stack: Vec<u32> = root.into_iter().collect();
        while let Some(i) = stack.pop() {
            if i as usize >= n {
                return Err(format!("VP-tree child index {i} out of bounds {n}"));
            }
            if seen[i as usize] {
                return Err(format!("VP-tree node {i} reachable twice (cycle)"));
            }
            seen[i as usize] = true;
            visited += 1;
            for link in [parts.inners[i as usize], parts.outers[i as usize]] {
                if link != u32::MAX {
                    stack.push(link);
                }
            }
        }
        if visited != n {
            return Err(format!(
                "VP-tree has {} nodes unreachable from the root",
                n - visited
            ));
        }
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let lo = parts.bucket_offsets[i] as usize;
            let hi = parts.bucket_offsets[i + 1] as usize;
            nodes.push(VpNode {
                vantage: RankingId(parts.vantages[i]),
                mu: parts.mus[i],
                inner: (parts.inners[i] != u32::MAX).then_some(parts.inners[i]),
                outer: (parts.outers[i] != u32::MAX).then_some(parts.outers[i]),
                bucket: parts.bucket_dists[lo..hi]
                    .iter()
                    .copied()
                    .zip(parts.bucket_ids[lo..hi].iter().map(|&id| RankingId(id)))
                    .collect(),
            });
        }
        let len = n + total + parts.overflow.len();
        Ok(VpTree {
            nodes,
            root,
            len,
            overflow: parts.overflow.into_iter().map(RankingId).collect(),
            build_distance_calls: 0,
        })
    }
}

/// Flat persistence form of a [`VpTree`] (see [`VpTree::export_parts`]).
/// `u32::MAX` encodes an absent root or child link.
#[doc(hidden)]
#[derive(Debug, Clone, Default)]
pub struct VpTreeParts {
    pub root: u32,
    pub vantages: Vec<u32>,
    pub mus: Vec<u32>,
    pub inners: Vec<u32>,
    pub outers: Vec<u32>,
    pub bucket_offsets: Vec<u32>,
    pub bucket_dists: Vec<u32>,
    pub bucket_ids: Vec<u32>,
    pub overflow: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_store;
    use crate::{linear_scan, query_pairs};

    #[test]
    fn range_query_matches_linear_scan() {
        let store = random_store(350, 7, 60, 31);
        let tree = VpTree::build(&store, 42);
        assert_eq!(tree.len(), 350);
        for (qid, theta) in [(0u32, 0u32), (9, 10), (77, 24), (349, 44)] {
            let q = query_pairs(store.items(RankingId(qid)));
            let mut s1 = QueryStats::new();
            let mut s2 = QueryStats::new();
            let mut expect = linear_scan(&store, &q, theta, &mut s1);
            let mut got = tree.range_query(&store, &q, theta, &mut s2);
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expect, "qid={qid} θ={theta}");
        }
    }

    #[test]
    fn all_rankings_present_at_max_threshold() {
        let store = random_store(120, 5, 30, 8);
        let tree = VpTree::build(&store, 7);
        let q = query_pairs(store.items(RankingId(0)));
        let mut stats = QueryStats::new();
        let res = tree.range_query(&store, &q, store.max_distance(), &mut stats);
        assert_eq!(res.len(), 120);
    }

    #[test]
    fn duplicates_supported() {
        let mut store = RankingStore::new(3);
        for _ in 0..10 {
            store.push_items_unchecked(&[4, 5, 6].map(ItemId));
        }
        let tree = VpTree::build(&store, 1);
        let q = query_pairs(&[4, 5, 6].map(ItemId));
        let mut stats = QueryStats::new();
        assert_eq!(tree.range_query(&store, &q, 0, &mut stats).len(), 10);
    }

    #[test]
    fn insert_and_tombstone_track_the_live_corpus_exactly() {
        let mut store = random_store(300, 6, 50, 19);
        let mut tree = VpTree::build(&store, 5);
        // Mutate: tombstone a third of the corpus, append fresh rankings
        // into the overflow buffer.
        for id in (0..300u32).step_by(3) {
            assert!(store.remove(RankingId(id)));
        }
        for i in 0..40u32 {
            let base = 1000 + i * 6;
            let id = store.push_items_unchecked(
                &[base, base + 1, base + 2, base + 3, base + 4, base + 5].map(ItemId),
            );
            tree.insert(id);
        }
        assert_eq!(tree.overflow_len(), 40);
        assert_eq!(tree.len(), 340);
        // Range queries and KNN agree with the live-corpus oracle.
        for qid in [1u32, 299, 310, 339] {
            let q = query_pairs(store.items(RankingId(qid)));
            let mut s1 = QueryStats::new();
            let mut s2 = QueryStats::new();
            let mut expect = linear_scan(&store, &q, 18, &mut s1);
            let mut got = tree.range_query(&store, &q, 18, &mut s2);
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expect, "range qid={qid}");
            let kexp = crate::knn::knn_linear(&store, &q, 7, &mut s1);
            let kgot = crate::knn::knn_vptree(&tree, &store, &q, 7, &mut s2);
            assert_eq!(kgot, kexp, "knn qid={qid}");
        }
        // A rebuild folds the overlay in and keeps answering identically.
        let rebuilt = VpTree::build(&store, 5);
        assert_eq!(rebuilt.overflow_len(), 0);
        assert_eq!(rebuilt.len(), store.live_len());
        let q = query_pairs(store.items(RankingId(302)));
        let mut s = QueryStats::new();
        let mut a = tree.range_query(&store, &q, 24, &mut s);
        let mut b = rebuilt.range_query(&store, &q, 24, &mut s);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn parts_round_trip_preserves_answers() {
        let mut store = random_store(300, 6, 50, 47);
        let mut tree = VpTree::build(&store, 9);
        for id in (0..300u32).step_by(5) {
            store.remove(RankingId(id));
        }
        for i in 0..12u32 {
            let base = 3000 + i * 6;
            let id = store.push_items_unchecked(
                &[base, base + 1, base + 2, base + 3, base + 4, base + 5].map(ItemId),
            );
            tree.insert(id);
        }
        let reloaded = VpTree::from_parts(tree.export_parts()).expect("round trip");
        assert_eq!(reloaded.len(), tree.len());
        assert_eq!(reloaded.overflow_len(), tree.overflow_len());
        for qid in [0u32, 88, 299, 305] {
            let q = query_pairs(store.items(RankingId(qid)));
            for theta in [0u32, 12, 26] {
                let mut s1 = QueryStats::new();
                let mut s2 = QueryStats::new();
                assert_eq!(
                    reloaded.range_query(&store, &q, theta, &mut s1),
                    tree.range_query(&store, &q, theta, &mut s2),
                    "qid={qid} θ={theta}"
                );
            }
        }
        // Corrupted child links are rejected, not traversed.
        let mut bad = tree.export_parts();
        if !bad.inners.is_empty() {
            bad.inners[0] = bad.root; // cycle back to the root
            assert!(VpTree::from_parts(bad).is_err());
        }
    }

    #[test]
    fn survives_all_pairs_equidistant() {
        // The degenerate case that overflows a recursive median-split
        // build: every pair of rankings at exactly d_max (disjoint).
        let mut store = RankingStore::new(3);
        for i in 0..5000u32 {
            store.push_items_unchecked(&[i * 3, i * 3 + 1, i * 3 + 2].map(ItemId));
        }
        let tree = VpTree::build(&store, 3);
        assert_eq!(tree.len(), 5000);
        let q = query_pairs(store.items(RankingId(777)));
        let mut stats = QueryStats::new();
        let res = tree.range_query(&store, &q, 0, &mut stats);
        assert_eq!(res, vec![RankingId(777)]);
    }

    #[test]
    fn survives_sparse_high_distance_corpus() {
        // Mostly-disjoint rankings (domain ≫ k·n overlap): the regime of
        // the NYT-like generator at large domains.
        let store = random_store(4000, 6, 5_000, 5);
        let tree = VpTree::build(&store, 11);
        let q = query_pairs(store.items(RankingId(5)));
        let mut s1 = QueryStats::new();
        let mut s2 = QueryStats::new();
        let mut expect = linear_scan(&store, &q, 20, &mut s1);
        let mut got = tree.range_query(&store, &q, 20, &mut s2);
        expect.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, expect);
    }
}
