//! Property tests: all metric structures equal the linear scan, and the
//! partitioners uphold their radius/coverage invariants, on arbitrary
//! corpora.

use proptest::prelude::*;
use ranksim_metricspace::{
    linear_scan, query_pairs, BkPartitioner, BkTree, MTree, RandomMedoidPartitioner, VpTree,
};
use ranksim_rankings::{footrule_store, ItemId, QueryStats, RankingStore};

fn store_from(rankings: &[Vec<u32>]) -> RankingStore {
    let k = rankings[0].len();
    let mut store = RankingStore::new(k);
    for r in rankings {
        let items: Vec<ItemId> = r.iter().map(|&i| ItemId(i)).collect();
        store.push_items_unchecked(&items);
    }
    store
}

fn corpus(n: usize, k: usize, domain: u32) -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(
        proptest::sample::subsequence((0..domain).collect::<Vec<u32>>(), k).prop_shuffle(),
        n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn trees_equal_linear_scan(
        rankings in corpus(60, 5, 20),
        qpick in 0usize..60,
        theta in 0u32..=30,
    ) {
        let store = store_from(&rankings);
        let q = query_pairs(store.items(ranksim_rankings::RankingId(qpick as u32)));
        let mut s = QueryStats::new();
        let mut expect = linear_scan(&store, &q, theta, &mut s);
        expect.sort_unstable();
        let mut bk = BkTree::build(&store).range_query(&store, &q, theta, &mut s);
        let mut mt = MTree::build(&store).range_query(&store, &q, theta, &mut s);
        let mut vp = VpTree::build(&store, 9).range_query(&store, &q, theta, &mut s);
        bk.sort_unstable();
        mt.sort_unstable();
        vp.sort_unstable();
        prop_assert_eq!(&bk, &expect, "BK-tree");
        prop_assert_eq!(&mt, &expect, "M-tree");
        prop_assert_eq!(&vp, &expect, "VP-tree");
    }

    #[test]
    fn partitioners_cover_disjointly_within_radius(
        rankings in corpus(50, 5, 18),
        theta_c in 0u32..=24,
        random in proptest::bool::ANY,
    ) {
        let store = store_from(&rankings);
        let part = if random {
            RandomMedoidPartitioner::new(7).partition(&store, theta_c)
        } else {
            BkPartitioner::partition(&store, theta_c)
        };
        prop_assert_eq!(part.total_members(), store.len());
        let mut seen = vec![false; store.len()];
        for pi in 0..part.num_partitions() {
            let medoid = part.partitions()[pi].medoid;
            for m in part.members_of(pi) {
                prop_assert!(!seen[m.index()], "duplicate membership");
                seen[m.index()] = true;
                prop_assert!(footrule_store(&store, medoid, m) <= theta_c);
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn partition_validation_is_exhaustive(
        rankings in corpus(45, 5, 16),
        theta_c in 0u32..=20,
        theta in 0u32..=24,
        qpick in 0usize..45,
    ) {
        let store = store_from(&rankings);
        let part = BkPartitioner::partition(&store, theta_c);
        let q = query_pairs(store.items(ranksim_rankings::RankingId(qpick as u32)));
        let mut s = QueryStats::new();
        let mut expect = linear_scan(&store, &q, theta, &mut s);
        expect.sort_unstable();
        let mut got = Vec::new();
        for pi in 0..part.num_partitions() {
            part.validate_into(&store, pi, &q, theta, None, &mut s, &mut got);
        }
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }
}
