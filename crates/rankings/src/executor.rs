//! The query-executor abstraction every processing technique plugs into.
//!
//! An algorithm's query path is a [`QueryExecutor`]: it runs one threshold
//! query through the caller's [`QueryScratch`] into a caller-owned result
//! buffer and reports what it did as an [`ExecStats`] — postings scanned,
//! candidates validated, distance computations. The engine's dispatch is
//! a table of boxed executors (one per built index structure) instead of
//! a central `match`, so algorithm crates own their execution path and
//! the cost-model planner can treat every technique uniformly: predicted
//! cost in, executor out, instrumented actuals back for recalibration.
//!
//! Executor impls live next to their index structures (`ranksim-invindex`
//! for the inverted-index family, `ranksim-adaptsearch` for AdaptSearch,
//! `ranksim-core` for the coarse hybrid path); this crate only defines
//! the contract, keeping the dependency graph acyclic.

use crate::ranking::{ItemId, RankingId, RankingStore};
use crate::scratch::QueryScratch;
use crate::stats::QueryStats;

/// What one executor invocation did, as counter deltas.
///
/// The fields mirror the [`QueryStats`] counters the paper's evaluation
/// reads (Figure 10 DFC, Section 7 phase breakdowns) but are scoped to a
/// single `execute` call, which makes them the planner's ground truth for
/// predicted-vs-actual cost accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Index-list entries streamed (postings read).
    pub postings_scanned: u64,
    /// Candidate rankings that reached a validation phase.
    pub candidates: u64,
    /// Full Footrule evaluations (the paper's DFC measure).
    pub distance_calls: u64,
    /// Posting entries bypassed by suffix-bound-ordered window scans.
    pub postings_skipped: u64,
    /// Validations aborted early by the suffix-bound distance kernel.
    pub validations_pruned: u64,
}

impl ExecStats {
    /// The delta between two cumulative [`QueryStats`] snapshots taken
    /// around one executor invocation.
    pub fn since(before: &QueryStats, after: &QueryStats) -> Self {
        ExecStats {
            postings_scanned: after.entries_scanned - before.entries_scanned,
            candidates: after.candidates - before.candidates,
            distance_calls: after.distance_calls - before.distance_calls,
            postings_skipped: after.postings_skipped - before.postings_skipped,
            validations_pruned: after.validations_pruned - before.validations_pruned,
        }
    }

    /// Folds another record into this one (batch accumulation).
    pub fn merge(&mut self, other: &ExecStats) {
        self.postings_scanned += other.postings_scanned;
        self.candidates += other.candidates;
        self.distance_calls += other.distance_calls;
        self.postings_skipped += other.postings_skipped;
        self.validations_pruned += other.validations_pruned;
    }
}

/// One query-processing technique behind a uniform execution contract.
///
/// Implementations hold their index structure (shared via `Arc` with the
/// engine that built it) and must uphold the engine-wide hot-path
/// invariant: with a warmed-up scratch and result buffer, `execute`
/// performs **zero** heap allocations.
pub trait QueryExecutor: Send + Sync {
    /// The paper's display name of the algorithm this executor runs.
    fn name(&self) -> &'static str;

    /// Runs one threshold query, appending the result ids to `out`
    /// (callers clear the buffer; executors only append), and returns the
    /// instrumented counter deltas of exactly this invocation.
    fn execute(
        &self,
        store: &RankingStore,
        query: &[ItemId],
        theta_raw: u32,
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
        out: &mut Vec<RankingId>,
    ) -> ExecStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_stats_delta_and_merge() {
        let mut before = QueryStats::new();
        before.count_list(10);
        before.count_distance();
        let mut after = before;
        after.count_list(5);
        after.count_distances(3);
        after.candidates += 4;
        after.postings_skipped += 6;
        after.validations_pruned += 2;
        let d = ExecStats::since(&before, &after);
        assert_eq!(
            d,
            ExecStats {
                postings_scanned: 5,
                candidates: 4,
                distance_calls: 3,
                postings_skipped: 6,
                validations_pruned: 2,
            }
        );
        let mut acc = ExecStats::default();
        acc.merge(&d);
        acc.merge(&d);
        assert_eq!(acc.postings_scanned, 10);
        assert_eq!(acc.candidates, 8);
        assert_eq!(acc.distance_calls, 6);
        assert_eq!(acc.postings_skipped, 12);
        assert_eq!(acc.validations_pruned, 4);
    }
}
