//! Spearman's Footrule distance adapted to top-k lists.
//!
//! Following Fagin, Kumar & Sivakumar ("Comparing Top k Lists", 2003), an
//! item `i ∉ D_τ` is assigned the artificial rank `l = k` (ranks run
//! `0..k-1`), which keeps the Footrule a metric over top-k lists. For two
//! size-k rankings `τ₁, τ₂`:
//!
//! ```text
//! F(τ₁, τ₂) =   Σ_{i ∈ D₁∩D₂} |τ₁(i) − τ₂(i)|
//!             + Σ_{i ∈ D₁\D₂} (k − τ₁(i))
//!             + Σ_{i ∈ D₂\D₁} (k − τ₂(i))
//! ```
//!
//! The distance ranges over the **even** integers `0..=k(k+1)`; the maximum
//! is attained exactly by disjoint rankings. Evenness holds because the
//! signed displacements over the union domain sum to zero and a sum of
//! absolute values has the parity of the plain sum.

use crate::hash::{fx_map_with_capacity, FxHashMap};
use crate::ranking::{ItemId, RankingStore};

/// Maximum Footrule distance between two size-`k` rankings: `k·(k+1)`.
#[inline]
pub fn max_distance(k: usize) -> u32 {
    (k * (k + 1)) as u32
}

/// `T(k) = k(k+1)/2`: the one-sided contribution of a ranking completely
/// disjoint from the other (`Σ_{p=0}^{k-1} (k − p)`).
#[inline]
pub fn one_side_total(k: usize) -> u32 {
    (k * (k + 1) / 2) as u32
}

/// Converts a normalized threshold `θ ∈ [0, 1]` into raw Footrule units for
/// rankings of size `k`. Values are clamped into `[0, k(k+1)]`; a tiny
/// epsilon guards against `0.3 * 110 = 32.999999…` style float dust.
#[inline]
pub fn raw_threshold(theta: f64, k: usize) -> u32 {
    let dmax = max_distance(k) as f64;
    let t = (theta.clamp(0.0, 1.0) * dmax + 1e-9).floor();
    t as u32
}

/// The smallest possible Footrule distance between two size-`k` rankings
/// that overlap in exactly `overlap` items: `L(k, ω) = L(k−ω)` where
/// `L(m) = m(m+1)` — attained when the ω common items are perfectly matched
/// at the top of both lists (paper, Section 6.1).
#[inline]
pub fn min_distance_for_overlap(k: usize, overlap: usize) -> u32 {
    debug_assert!(overlap <= k);
    max_distance(k - overlap)
}

/// Footrule distance between two rankings given their item-sorted
/// `(item, rank)` pairs (as stored by [`RankingStore::sorted_pairs`]).
/// Allocation-free sorted merge; `O(k)`.
pub fn footrule_pairs(a: &[(ItemId, u32)], b: &[(ItemId, u32)], k: usize) -> u32 {
    debug_assert_eq!(a.len(), k);
    debug_assert_eq!(b.len(), k);
    let k = k as u32;
    let mut dist = 0u32;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (ia, ra) = a[i];
        let (ib, rb) = b[j];
        match ia.cmp(&ib) {
            std::cmp::Ordering::Equal => {
                dist += ra.abs_diff(rb);
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => {
                dist += k - ra;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                dist += k - rb;
                j += 1;
            }
        }
    }
    while i < a.len() {
        dist += k - a[i].1;
        i += 1;
    }
    while j < b.len() {
        dist += k - b[j].1;
        j += 1;
    }
    dist
}

/// Footrule distance between two rankings in rank order. Builds a scratch
/// map; prefer [`footrule_pairs`] or [`PositionMap`] in hot loops.
pub fn footrule_items(a: &[ItemId], b: &[ItemId]) -> u32 {
    assert_eq!(a.len(), b.len(), "rankings must have equal size");
    let q = PositionMap::new(a);
    q.distance_to(b)
}

/// A query-side item → rank map enabling `O(k)` Footrule evaluation against
/// any candidate ranking without touching the query again.
///
/// This is the "distance function call" primitive counted by
/// [`crate::QueryStats`]: algorithms construct one `PositionMap` per query
/// and call [`PositionMap::distance_to`] per candidate.
#[derive(Debug, Clone)]
pub struct PositionMap {
    k: u32,
    pos: FxHashMap<ItemId, u32>,
}

impl PositionMap {
    /// Builds the map from a query ranking's items (rank order).
    pub fn new(items: &[ItemId]) -> Self {
        let mut pos = fx_map_with_capacity(items.len());
        for (r, &i) in items.iter().enumerate() {
            let prev = pos.insert(i, r as u32);
            debug_assert!(prev.is_none(), "duplicate item in query ranking");
        }
        PositionMap {
            k: items.len() as u32,
            pos,
        }
    }

    /// The ranking size `k`.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The query rank of `item`, if contained.
    #[inline]
    pub fn rank_of(&self, item: ItemId) -> Option<u32> {
        self.pos.get(&item).copied()
    }

    /// Footrule distance from the query to `candidate` (rank-ordered items
    /// of an equal-size ranking).
    pub fn distance_to(&self, candidate: &[ItemId]) -> u32 {
        debug_assert_eq!(candidate.len() as u32, self.k);
        let k = self.k;
        // q-side total if the candidate matched nothing; matched items give
        // their (k − q(i)) share back and add |τ(i) − q(i)| instead.
        let mut dist = one_side_total(k as usize);
        for (p, &item) in candidate.iter().enumerate() {
            let p = p as u32;
            match self.pos.get(&item) {
                Some(&qp) => {
                    dist += p.abs_diff(qp);
                    dist -= k - qp;
                }
                None => dist += k - p,
            }
        }
        dist
    }

    /// Number of common items between the query and `candidate`.
    pub fn overlap(&self, candidate: &[ItemId]) -> usize {
        candidate
            .iter()
            .filter(|i| self.pos.contains_key(i))
            .count()
    }
}

/// Convenience: Footrule distance between two stored rankings.
pub fn footrule_store(
    store: &RankingStore,
    a: crate::ranking::RankingId,
    b: crate::ranking::RankingId,
) -> u32 {
    footrule_pairs(store.sorted_pairs(a), store.sorted_pairs(b), store.k())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::Ranking;

    fn pairs(items: &[u32]) -> Vec<(ItemId, u32)> {
        let mut v: Vec<(ItemId, u32)> = items
            .iter()
            .enumerate()
            .map(|(r, &i)| (ItemId(i), r as u32))
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn paper_example_distances() {
        // Paper Section 3 uses 1-based ranks and l = 6 for k=5/k=3 mixed
        // lists; our fixed-size-k convention (ranks 0..k-1, l = k) is tested
        // against hand-computed values instead.
        // τ1 = [2,5,6,4,1], τ3 = [0,8,4,5,7], k=5, l=5.
        // common: {4,5}. τ1: 4@3, 5@1; τ3: 4@2, 5@3 → |3-2| + |1-3| = 3.
        // τ1-only {2,6,1} at ranks 0,2,4 → (5-0)+(5-2)+(5-4) = 9.
        // τ3-only {0,8,7} at ranks 0,1,4 → 5+4+1 = 10. total 22.
        let d = footrule_items(
            Ranking::new([2, 5, 6, 4, 1]).unwrap().items(),
            Ranking::new([0, 8, 4, 5, 7]).unwrap().items(),
        );
        assert_eq!(d, 22);
    }

    #[test]
    fn identical_rankings_have_zero_distance() {
        let a = pairs(&[3, 1, 4, 1 + 4, 9]);
        assert_eq!(footrule_pairs(&a, &a, 5), 0);
    }

    #[test]
    fn disjoint_rankings_attain_max() {
        let a = pairs(&[0, 1, 2, 3]);
        let b = pairs(&[10, 11, 12, 13]);
        assert_eq!(footrule_pairs(&a, &b, 4), max_distance(4));
        assert_eq!(max_distance(4), 20);
    }

    #[test]
    fn pairs_and_position_map_agree() {
        let xs = [7u32, 1, 6, 5, 2];
        let ys = [1u32, 4, 5, 9, 0];
        let d1 = footrule_pairs(&pairs(&xs), &pairs(&ys), 5);
        let q = PositionMap::new(&xs.map(ItemId));
        let d2 = q.distance_to(&ys.map(ItemId));
        assert_eq!(d1, d2);
    }

    #[test]
    fn swap_adjacent_costs_two() {
        let d = footrule_items(
            &[ItemId(1), ItemId(2), ItemId(3)],
            &[ItemId(2), ItemId(1), ItemId(3)],
        );
        assert_eq!(d, 2);
    }

    #[test]
    fn raw_threshold_boundaries() {
        assert_eq!(raw_threshold(0.0, 10), 0);
        assert_eq!(raw_threshold(1.0, 10), 110);
        assert_eq!(raw_threshold(0.2, 10), 22);
        assert_eq!(raw_threshold(0.3, 10), 33);
        assert_eq!(raw_threshold(-0.5, 10), 0);
        assert_eq!(raw_threshold(2.0, 10), 110);
    }

    #[test]
    fn min_distance_for_overlap_decreases() {
        let k = 10;
        let mut prev = u32::MAX;
        for w in 0..=k {
            let l = min_distance_for_overlap(k, w);
            assert!(l < prev);
            prev = l;
        }
        assert_eq!(min_distance_for_overlap(k, k), 0);
        assert_eq!(min_distance_for_overlap(k, 0), max_distance(k));
    }

    #[test]
    fn overlap_counts_common_items() {
        let q = PositionMap::new(&[1, 2, 3, 4].map(ItemId));
        assert_eq!(q.overlap(&[3, 4, 5, 6].map(ItemId)), 2);
        assert_eq!(q.overlap(&[9, 8, 7, 6].map(ItemId)), 0);
        assert_eq!(q.overlap(&[1, 2, 3, 4].map(ItemId)), 4);
    }
}
