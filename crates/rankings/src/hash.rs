//! A minimal Fx-style hasher for hot, integer-keyed hash maps.
//!
//! Candidate aggregation during query processing performs millions of
//! lookups keyed by `u32` ranking ids; the standard library's SipHash is a
//! poor fit there. This is the well-known Firefox/rustc "Fx" multiply-xor
//! hash, re-implemented locally (≈30 lines) instead of depending on the
//! `rustc-hash` crate — see DESIGN.md §7.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx hasher: `state = (state.rotate_left(5) ^ word) * SEED`.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Creates an [`FxHashMap`] with room for `cap` entries.
pub fn fx_map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

/// Creates an [`FxHashSet`] with room for `cap` entries.
pub fn fx_set_with_capacity<T>(cap: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, u32> = fx_map_with_capacity(8);
        for i in 0..1000u32 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m[&i], i * 2);
        }
    }

    #[test]
    fn hash_differs_for_different_keys() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let b: BuildHasherDefault<FxHasher> = BuildHasherDefault::default();
        let h1 = b.hash_one(1u32);
        let h2 = b.hash_one(2u32);
        assert_ne!(h1, h2);
    }

    #[test]
    fn write_bytes_covers_tail() {
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let a = h.finish();
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a, h.finish());
    }
}
