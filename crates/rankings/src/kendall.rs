//! Kendall's tau for top-k lists (the optimistic `K^(0)` variant of Fagin
//! et al.).
//!
//! The library's indexing pipeline is built around Spearman's Footrule, but
//! Kendall's tau is the other prominent rank-distance the paper's related
//! work discusses, and the Diaconis–Graham inequality
//! `K ≤ F ≤ 2·K` (for permutations over a common domain) provides a cheap
//! cross-check exploited by the test-suite.

use crate::kernel::Kernel;
use crate::ranking::ItemId;

/// Kendall's tau with penalty parameter `p = 0` ("optimistic") for two
/// equal-size top-k lists.
///
/// Every unordered pair `{i, j}` of items from `D₁ ∪ D₂` contributes:
///
/// * both items in both lists: 1 if the lists disagree on the order,
/// * `i, j` in one list while only `i` (say, ranked higher... ) appears in
///   the other: 1 if the containing list ranks `j` above `i` while the
///   other list implicitly ranks the missing item below all present ones,
/// * `i` only in one list, `j` only in the other: 1 (they must be ordered
///   oppositely),
/// * both in one list, neither in the other: 0 under `p = 0`.
pub fn kendall_top_k(a: &[ItemId], b: &[ItemId]) -> u32 {
    assert_eq!(a.len(), b.len(), "rankings must have equal size");
    let pos = |xs: &[ItemId], i: ItemId| xs.iter().position(|&x| x == i);
    let mut union: Vec<ItemId> = a.to_vec();
    for &i in b {
        if !a.contains(&i) {
            union.push(i);
        }
    }
    let mut dist = 0u32;
    for x in 0..union.len() {
        for y in (x + 1)..union.len() {
            let (i, j) = (union[x], union[y]);
            let (ai, aj) = (pos(a, i), pos(a, j));
            let (bi, bj) = (pos(b, i), pos(b, j));
            match (ai, aj, bi, bj) {
                // Case 1: both items in both lists.
                (Some(ai), Some(aj), Some(bi), Some(bj)) => {
                    if (ai < aj) != (bi < bj) {
                        dist += 1;
                    }
                }
                // Case 2: i,j in list a; only one of them in list b (the
                // missing one is implicitly ranked last in b).
                (Some(ai), Some(aj), Some(_), None) => {
                    if aj < ai {
                        dist += 1;
                    }
                }
                (Some(ai), Some(aj), None, Some(_)) => {
                    if ai < aj {
                        dist += 1;
                    }
                }
                (Some(_), None, Some(bi), Some(bj)) => {
                    if bj < bi {
                        dist += 1;
                    }
                }
                (None, Some(_), Some(bi), Some(bj)) => {
                    if bi < bj {
                        dist += 1;
                    }
                }
                // Case 4: i only in one list, j only in the other.
                (Some(_), None, None, Some(_)) | (None, Some(_), Some(_), None) => dist += 1,
                // Case 3: both in exactly one list — optimistic p = 0.
                (Some(_), Some(_), None, None) | (None, None, Some(_), Some(_)) => {}
                // Items outside both lists cannot appear in the union.
                _ => unreachable!("union item missing from both rankings"),
            }
        }
    }
    dist
}

/// [`kendall_top_k`] with an explicit [`Kernel`] selection.
///
/// [`Kernel::Scalar`] runs the case-by-case reference above;
/// [`Kernel::Simd`] runs [`kendall_top_k_flat`]. Both return identical
/// distances for every input.
pub fn kendall_top_k_with(a: &[ItemId], b: &[ItemId], kernel: Kernel) -> u32 {
    match kernel {
        Kernel::Scalar => kendall_top_k(a, b),
        Kernel::Simd => kendall_top_k_flat(a, b),
    }
}

/// Branchless formulation of [`kendall_top_k`] over flat position arrays.
///
/// Union items get their positions in `a` and `b` materialized into two
/// dense `u32` arrays with the artificial rank `k` standing in for
/// missing items (the same sentinel convention the Footrule kernel
/// uses). A pair `{x, y}` is then discordant exactly when
///
/// ```text
/// (pa[x] < pa[y]) != (pb[x] < pb[y])  &&  pa[x] != pa[y]  &&  pb[x] != pb[y]
/// ```
///
/// — the order-disagreement test with ties (both missing from the same
/// list, i.e. both at the sentinel) excluded, which reproduces the
/// optimistic `p = 0` case analysis: genuine inversions and Case-2/4
/// sentinel comparisons count 1, Case-3 pairs (tied at the sentinel on
/// one side) count 0. The inner pair loop is pure arithmetic over two
/// flat arrays, so it auto-vectorizes where the `match` cannot.
pub fn kendall_top_k_flat(a: &[ItemId], b: &[ItemId]) -> u32 {
    assert_eq!(a.len(), b.len(), "rankings must have equal size");
    let k = a.len() as u32;
    let mut union: Vec<ItemId> = a.to_vec();
    for &i in b {
        if !a.contains(&i) {
            union.push(i);
        }
    }
    let mut pa = vec![k; union.len()];
    let mut pb = vec![k; union.len()];
    for (x, &item) in union.iter().enumerate() {
        if let Some(p) = a.iter().position(|&i| i == item) {
            pa[x] = p as u32;
        }
        if let Some(p) = b.iter().position(|&i| i == item) {
            pb[x] = p as u32;
        }
    }
    let mut dist = 0u32;
    for x in 0..union.len() {
        let (pax, pbx) = (pa[x], pb[x]);
        for y in (x + 1)..union.len() {
            let (pay, pby) = (pa[y], pb[y]);
            let discordant = ((pax < pay) != (pbx < pby)) & (pax != pay) & (pbx != pby);
            dist += discordant as u32;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footrule::footrule_items;

    fn ids(xs: &[u32]) -> Vec<ItemId> {
        xs.iter().map(|&x| ItemId(x)).collect()
    }

    #[test]
    fn identical_lists_zero() {
        let a = ids(&[1, 2, 3, 4]);
        assert_eq!(kendall_top_k(&a, &a), 0);
    }

    #[test]
    fn single_swap_costs_one() {
        assert_eq!(kendall_top_k(&ids(&[1, 2, 3]), &ids(&[2, 1, 3])), 1);
    }

    #[test]
    fn disjoint_lists() {
        // All pairs across the two domains are discordant: k² pairs.
        let a = ids(&[1, 2, 3]);
        let b = ids(&[4, 5, 6]);
        assert_eq!(kendall_top_k(&a, &b), 9);
    }

    #[test]
    fn symmetric() {
        let a = ids(&[1, 2, 9, 8, 3]);
        let b = ids(&[9, 8, 1, 2, 4]);
        assert_eq!(kendall_top_k(&a, &b), kendall_top_k(&b, &a));
    }

    #[test]
    fn reversed_list_costs_all_pairs() {
        // Reversal flips every one of the C(k, 2) pairs.
        let a = ids(&[1, 2, 3, 4, 5]);
        let b = ids(&[5, 4, 3, 2, 1]);
        assert_eq!(kendall_top_k(&a, &b), 10);
        assert_eq!(kendall_top_k(&ids(&[1, 2]), &ids(&[2, 1])), 1);
    }

    #[test]
    fn optimistic_case3_pairs_cost_nothing() {
        // a = [1,2,3,4], b = [1,2,5,6]: the pair {3,4} lives only in a and
        // {5,6} only in b — under the optimistic p = 0 variant both cost 0.
        // The only discordant pairs are the 4 cross pairs {3,5}, {3,6},
        // {4,5}, {4,6} (one item exclusive to each list, Case 4).
        let a = ids(&[1, 2, 3, 4]);
        let b = ids(&[1, 2, 5, 6]);
        assert_eq!(kendall_top_k(&a, &b), 4);
    }

    #[test]
    fn missing_item_ranks_below_all_present_items() {
        // a = [1,2,3], b = [1,4,2]. Pair {2,4}: b ranks 4 above 2 while a,
        // missing 4, implicitly ranks it below everything → discordant.
        // Pair {3,4} is Case 4. Pairs {1,2}, {1,3}, {2,3}, {1,4} agree.
        let a = ids(&[1, 2, 3]);
        let b = ids(&[1, 4, 2]);
        assert_eq!(kendall_top_k(&a, &b), 2);
    }

    #[test]
    fn case2_penalizes_only_inverted_containing_list() {
        // a = [1,2,3], b = [3,5,1], by hand over the union {1,2,3,5}:
        // {1,3} inverted in both lists (Case 1, +1); {1,5} b ranks 5 above
        // 1 while a implicitly ranks the missing 5 last (Case 2, +1);
        // {2,3} b ranks 3 above its missing 2 while a says 2 < 3 (Case 2,
        // +1); {2,5} exclusive to opposite lists (Case 4, +1); {1,2} and
        // {3,5} concordant. Total 4.
        let a = ids(&[1, 2, 3]);
        let b = ids(&[3, 5, 1]);
        assert_eq!(kendall_top_k(&a, &b), 4);
        assert_eq!(kendall_top_k(&b, &a), 4);
    }

    #[test]
    fn flat_kernel_matches_reference_on_every_case_shape() {
        let pairs = [
            (ids(&[1, 2, 3, 4]), ids(&[1, 2, 3, 4])),
            (ids(&[1, 2, 3]), ids(&[2, 1, 3])),
            (ids(&[1, 2, 3]), ids(&[4, 5, 6])),
            (ids(&[1, 2, 3, 4]), ids(&[1, 2, 5, 6])),
            (ids(&[1, 2, 3]), ids(&[1, 4, 2])),
            (ids(&[1, 2, 3]), ids(&[3, 5, 1])),
            (ids(&[1, 2, 9, 8, 3]), ids(&[9, 8, 1, 2, 4])),
            (ids(&[1, 2, 3, 4, 5]), ids(&[5, 4, 3, 2, 1])),
            (ids(&[]), ids(&[])),
            (ids(&[7]), ids(&[7])),
            (ids(&[7]), ids(&[8])),
        ];
        for (a, b) in &pairs {
            let reference = kendall_top_k(a, b);
            assert_eq!(kendall_top_k_flat(a, b), reference, "a={a:?} b={b:?}");
            assert_eq!(kendall_top_k_with(a, b, Kernel::Scalar), reference);
            assert_eq!(kendall_top_k_with(a, b, Kernel::Simd), reference);
            assert_eq!(kendall_top_k_flat(b, a), reference, "symmetry");
        }
    }

    #[test]
    fn footrule_dominates_kendall_on_permutations() {
        // Diaconis–Graham: K ≤ F ≤ 2K for permutations of the same domain.
        let a = ids(&[0, 1, 2, 3, 4]);
        let perms = [
            ids(&[4, 3, 2, 1, 0]),
            ids(&[1, 0, 3, 2, 4]),
            ids(&[2, 4, 0, 1, 3]),
        ];
        for b in &perms {
            let k = kendall_top_k(&a, b);
            let f = footrule_items(&a, b);
            assert!(k <= f && f <= 2 * k, "K={k} F={f}");
        }
    }
}
