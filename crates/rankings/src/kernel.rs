//! Distance-kernel selection for the position-compare hot loops.
//!
//! The Footrule validation loop is the single hottest instruction
//! sequence in the workspace: every candidate surfacing from an inverted
//! index is scored by walking its `k` items against the query's flat
//! position map. Two interchangeable kernels implement that walk:
//!
//! * [`Kernel::Scalar`] — the straight-line reference loop (one branch
//!   per item on query membership). This is the oracle every other
//!   kernel is differentially tested against.
//! * [`Kernel::Simd`] — a chunked, branchless formulation designed for
//!   auto-vectorization: item ranks are gathered into a small stack
//!   buffer with the artificial rank `l = k` standing in for missing
//!   items (the Fagin et al. convention already used by the distance
//!   itself), so the per-item contribution collapses to one unified
//!   arithmetic expression with no data-dependent branch. On top of the
//!   chunked walk it carries a **suffix-bound early exit**: after `p`
//!   processed items the remaining `k − p` items can lower the running
//!   total by at most `T(k − p) = (k−p)(k−p+1)/2`, so the moment
//!   `partial − T(k − p)` exceeds the query threshold the candidate is
//!   provably outside θ and the walk aborts.
//!
//! Both kernels are exact: for any candidate within θ they return the
//! identical distance, and the early exit only ever fires on candidates
//! whose final distance is certainly above θ. Result sets are therefore
//! bit-identical across kernels — the property
//! `crates/rankings/tests` and the invindex differential suites pin down
//! on adversarial lengths and alignments.

use std::fmt;
use std::str::FromStr;

/// How many candidate items one gather/arith block of the chunked kernel
/// covers. Small on purpose: rankings are short (`k ≈ 10` in the paper's
/// workloads), and the suffix-bound exit is checked at chunk boundaries —
/// a coarser chunk would process most of a hopeless candidate before the
/// first check.
pub const KERNEL_CHUNK: usize = 4;

/// Selects the position-compare kernel used by distance-dominated loops.
///
/// Selection is a runtime value (engine-level configuration, `repro
/// --kernel`) so the two implementations can be A/B-measured in one
/// binary without rebuilding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Reference per-item loop; branch on query membership per item.
    Scalar,
    /// Chunked branchless (auto-vectorization-friendly) loop with the
    /// suffix-bound early exit.
    Simd,
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::Simd
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Kernel::Scalar => "scalar",
            Kernel::Simd => "simd",
        })
    }
}

/// Error for unknown kernel names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseKernelError(pub String);

impl fmt::Display for ParseKernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown kernel '{}' (expected scalar|simd)", self.0)
    }
}

impl std::error::Error for ParseKernelError {}

impl FromStr for Kernel {
    type Err = ParseKernelError;

    /// Case-insensitive; surrounding whitespace ignored.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Ok(Kernel::Scalar),
            "simd" => Ok(Kernel::Simd),
            _ => Err(ParseKernelError(s.trim().to_string())),
        }
    }
}

impl Kernel {
    /// Stable persistence tag (`0` = scalar, `1` = simd).
    #[doc(hidden)]
    pub fn to_tag(self) -> u32 {
        match self {
            Kernel::Scalar => 0,
            Kernel::Simd => 1,
        }
    }

    /// Inverse of [`Kernel::to_tag`].
    #[doc(hidden)]
    pub fn from_tag(tag: u32) -> Result<Self, String> {
        match tag {
            0 => Ok(Kernel::Scalar),
            1 => Ok(Kernel::Simd),
            _ => Err(format!("unknown kernel tag {tag}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_kernels_case_insensitively() {
        assert_eq!("scalar".parse::<Kernel>().unwrap(), Kernel::Scalar);
        assert_eq!(" SIMD ".parse::<Kernel>().unwrap(), Kernel::Simd);
        assert_eq!("Scalar".parse::<Kernel>().unwrap(), Kernel::Scalar);
    }

    #[test]
    fn rejects_unknown_names() {
        let err = "avx512".parse::<Kernel>().unwrap_err();
        assert!(err.to_string().contains("avx512"));
        assert!("".parse::<Kernel>().is_err());
    }

    #[test]
    fn tags_round_trip() {
        for k in [Kernel::Scalar, Kernel::Simd] {
            assert_eq!(Kernel::from_tag(k.to_tag()).unwrap(), k);
        }
        assert!(Kernel::from_tag(9).is_err());
    }

    #[test]
    fn default_is_the_fast_kernel() {
        assert_eq!(Kernel::default(), Kernel::Simd);
        assert_eq!(Kernel::Simd.to_string(), "simd");
        assert_eq!(Kernel::Scalar.to_string(), "scalar");
    }
}
