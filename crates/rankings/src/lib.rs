//! Top-k ranking model and rank-distance functions.
//!
//! This crate is the substrate every other `ranksim` crate builds on. It
//! provides:
//!
//! * [`Ranking`] — an owned, validated top-k list (a bijection from a small
//!   item domain onto ranks `0..k-1`),
//! * [`RankingStore`] — flat, cache-friendly storage for a corpus of
//!   equal-size rankings, addressed by [`RankingId`],
//! * [`footrule`] — Spearman's Footrule adapted to top-k lists following
//!   Fagin, Kumar & Sivakumar (SIAM J. Discrete Math., 2003): items missing
//!   from a ranking are assigned the artificial rank `l = k`,
//! * [`kendall`] — Kendall's tau for top-k lists (optimistic variant), kept
//!   for completeness and cross-checks,
//! * [`QueryStats`] — per-query instrumentation (distance-function calls,
//!   list accesses, candidates) used by the paper's Figure 10,
//! * [`ItemRemap`] — the corpus-wide `ItemId → dense u32` remap backing the
//!   CSR index layouts and the flat query-side maps,
//! * [`QueryScratch`] — epoch-versioned, reusable per-query working memory
//!   making steady-state query processing allocation-free,
//! * [`hash`] — a minimal Fx-style hasher for hot u32-keyed maps.
//!
//! Distances are **raw integers** throughout (`0..=k(k+1)`); the adapted
//! Footrule distance between two size-k rankings is always even. Normalized
//! thresholds in `[0, 1]` are converted at the API boundary via
//! [`footrule::raw_threshold`].

pub mod executor;
pub mod footrule;
pub mod hash;
pub mod kendall;
pub mod kernel;
pub mod ranking;
pub mod remap;
pub mod scratch;
pub mod stats;

pub use executor::{ExecStats, QueryExecutor};
pub use footrule::{
    footrule_items, footrule_pairs, footrule_store, max_distance, min_distance_for_overlap,
    one_side_total, raw_threshold, PositionMap,
};
pub use kendall::{kendall_top_k, kendall_top_k_flat, kendall_top_k_with};
pub use kernel::{Kernel, ParseKernelError, KERNEL_CHUNK};
#[doc(hidden)]
pub use ranking::{
    item_vec_from_u32, item_vec_into_u32, ranking_vec_from_u32, ranking_vec_into_u32, StoreParts,
};
pub use ranking::{validate_items, ItemId, Ranking, RankingError, RankingId, RankingStore};
pub use remap::ItemRemap;
#[doc(hidden)]
pub use remap::RemapParts;
pub use scratch::{EpochMap, EpochSet, FlatPositionMap, QueryScratch};
pub use stats::QueryStats;
