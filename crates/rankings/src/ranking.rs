//! Owned rankings and the flat corpus store.

use std::fmt;

/// Identifier of a ranked item (a document, an entity, a movie, ...).
///
/// Items are dense or sparse u32 ids; the library never interprets them
/// beyond equality, so callers may map arbitrary domains onto them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct ItemId(pub u32);

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl From<u32> for ItemId {
    fn from(v: u32) -> Self {
        ItemId(v)
    }
}

/// Identifier of a ranking inside a [`RankingStore`]: the dense index of the
/// ranking in insertion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct RankingId(pub u32);

impl fmt::Display for RankingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

impl RankingId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Errors raised when constructing rankings or stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankingError {
    /// A ranking contained the same item at two ranks.
    DuplicateItem(ItemId),
    /// A ranking's length did not match the store's fixed `k`.
    WrongLength { expected: usize, got: usize },
    /// An empty ranking was supplied.
    Empty,
}

impl fmt::Display for RankingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankingError::DuplicateItem(i) => write!(f, "duplicate item {i} in ranking"),
            RankingError::WrongLength { expected, got } => {
                write!(f, "ranking of length {got}, store expects k = {expected}")
            }
            RankingError::Empty => write!(f, "empty ranking"),
        }
    }
}

impl std::error::Error for RankingError {}

/// An owned top-k list: `items[r]` is the item ranked at position `r`
/// (`r = 0` is the top rank). Items are pairwise distinct.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ranking {
    items: Box<[ItemId]>,
}

impl Ranking {
    /// Builds a ranking from top-to-bottom items, validating distinctness.
    pub fn new<I: IntoIterator<Item = u32>>(items: I) -> Result<Self, RankingError> {
        let items: Vec<ItemId> = items.into_iter().map(ItemId).collect();
        if items.is_empty() {
            return Err(RankingError::Empty);
        }
        let mut sorted = items.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                return Err(RankingError::DuplicateItem(w[0]));
            }
        }
        Ok(Ranking {
            items: items.into_boxed_slice(),
        })
    }

    /// The ranking size `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.items.len()
    }

    /// Items from the top rank downwards.
    #[inline]
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// The rank of `item`, or `None` if the item is not contained.
    pub fn rank_of(&self, item: ItemId) -> Option<u32> {
        self.items.iter().position(|&i| i == item).map(|p| p as u32)
    }
}

impl AsRef<[ItemId]> for Ranking {
    fn as_ref(&self) -> &[ItemId] {
        &self.items
    }
}

/// Flat storage for a corpus of equal-size rankings.
///
/// Two parallel layouts are kept:
///
/// * `items`: row-major `n × k` item ids in rank order — used by query
///   processing (sequential scans of a ranking's content),
/// * `sorted`: per ranking, the `(item, rank)` pairs sorted by item id —
///   used for allocation-free store-to-store Footrule via a sorted merge,
///   which dominates metric-tree construction.
#[derive(Debug, Clone)]
pub struct RankingStore {
    k: usize,
    items: Vec<ItemId>,
    sorted: Vec<(ItemId, u32)>,
}

impl RankingStore {
    /// Creates an empty store for rankings of size `k`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "ranking size k must be positive");
        RankingStore {
            k,
            items: Vec::new(),
            sorted: Vec::new(),
        }
    }

    /// Creates an empty store with capacity for `n` rankings.
    pub fn with_capacity(k: usize, n: usize) -> Self {
        let mut s = Self::new(k);
        s.items.reserve(n * k);
        s.sorted.reserve(n * k);
        s
    }

    /// The fixed ranking size.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of rankings stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len() / self.k
    }

    /// Whether the store is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Appends a ranking, returning its id.
    pub fn push(&mut self, ranking: &Ranking) -> Result<RankingId, RankingError> {
        if ranking.k() != self.k {
            return Err(RankingError::WrongLength {
                expected: self.k,
                got: ranking.k(),
            });
        }
        Ok(self.push_items_unchecked(ranking.items()))
    }

    /// Appends raw items that are already known to be distinct and of
    /// length `k` (dataset generators uphold this by construction).
    pub fn push_items_unchecked(&mut self, items: &[ItemId]) -> RankingId {
        debug_assert_eq!(items.len(), self.k);
        let id = RankingId(self.len() as u32);
        self.items.extend_from_slice(items);
        let base = self.sorted.len();
        self.sorted
            .extend(items.iter().enumerate().map(|(r, &i)| (i, r as u32)));
        self.sorted[base..].sort_unstable();
        id
    }

    /// Appends every ranking produced by the iterator.
    pub fn extend<'a, I: IntoIterator<Item = &'a Ranking>>(
        &mut self,
        iter: I,
    ) -> Result<(), RankingError> {
        for r in iter {
            self.push(r)?;
        }
        Ok(())
    }

    /// The items of ranking `id` in rank order.
    #[inline]
    pub fn items(&self, id: RankingId) -> &[ItemId] {
        let b = id.index() * self.k;
        &self.items[b..b + self.k]
    }

    /// The `(item, rank)` pairs of ranking `id`, sorted by item id.
    #[inline]
    pub fn sorted_pairs(&self, id: RankingId) -> &[(ItemId, u32)] {
        let b = id.index() * self.k;
        &self.sorted[b..b + self.k]
    }

    /// Materializes ranking `id` as an owned [`Ranking`].
    pub fn ranking(&self, id: RankingId) -> Ranking {
        Ranking {
            items: self.items(id).to_vec().into_boxed_slice(),
        }
    }

    /// Iterates over all ranking ids.
    pub fn ids(&self) -> impl Iterator<Item = RankingId> + '_ {
        (0..self.len() as u32).map(RankingId)
    }

    /// The largest possible Footrule distance between two stored rankings.
    #[inline]
    pub fn max_distance(&self) -> u32 {
        crate::footrule::max_distance(self.k)
    }

    /// Approximate heap footprint in bytes (used by the Table 6 experiment).
    pub fn heap_bytes(&self) -> usize {
        self.items.capacity() * std::mem::size_of::<ItemId>()
            + self.sorted.capacity() * std::mem::size_of::<(ItemId, u32)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_rejects_duplicates() {
        assert_eq!(
            Ranking::new([1, 2, 1]),
            Err(RankingError::DuplicateItem(ItemId(1)))
        );
    }

    #[test]
    fn ranking_rejects_empty() {
        assert_eq!(Ranking::new([]), Err(RankingError::Empty));
    }

    #[test]
    fn ranking_rank_of() {
        let r = Ranking::new([5, 3, 9]).unwrap();
        assert_eq!(r.rank_of(ItemId(5)), Some(0));
        assert_eq!(r.rank_of(ItemId(9)), Some(2));
        assert_eq!(r.rank_of(ItemId(4)), None);
        assert_eq!(r.k(), 3);
    }

    #[test]
    fn store_roundtrip() {
        let mut store = RankingStore::new(4);
        let a = Ranking::new([2, 5, 4, 3]).unwrap();
        let b = Ranking::new([1, 4, 5, 9]).unwrap();
        let ia = store.push(&a).unwrap();
        let ib = store.push(&b).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.ranking(ia), a);
        assert_eq!(store.ranking(ib), b);
        assert_eq!(
            store.items(ib),
            &[ItemId(1), ItemId(4), ItemId(5), ItemId(9)]
        );
    }

    #[test]
    fn store_sorted_pairs_are_sorted() {
        let mut store = RankingStore::new(4);
        let id = store.push(&Ranking::new([9, 1, 7, 3]).unwrap()).unwrap();
        let pairs = store.sorted_pairs(id);
        assert_eq!(
            pairs,
            &[
                (ItemId(1), 1),
                (ItemId(3), 3),
                (ItemId(7), 2),
                (ItemId(9), 0)
            ]
        );
    }

    #[test]
    fn store_rejects_wrong_length() {
        let mut store = RankingStore::new(3);
        let r = Ranking::new([1, 2]).unwrap();
        assert_eq!(
            store.push(&r),
            Err(RankingError::WrongLength {
                expected: 3,
                got: 2
            })
        );
    }

    #[test]
    fn store_ids_enumerate() {
        let mut store = RankingStore::new(2);
        for i in 0..5u32 {
            store
                .push(&Ranking::new([i * 2, i * 2 + 1]).unwrap())
                .unwrap();
        }
        let ids: Vec<_> = store.ids().collect();
        assert_eq!(ids.len(), 5);
        assert_eq!(ids[3], RankingId(3));
    }
}
