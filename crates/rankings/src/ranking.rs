//! Owned rankings and the flat corpus store.

use std::fmt;

/// Identifier of a ranked item (a document, an entity, a movie, ...).
///
/// Items are dense or sparse u32 ids; the library never interprets them
/// beyond equality, so callers may map arbitrary domains onto them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct ItemId(pub u32);

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl From<u32> for ItemId {
    fn from(v: u32) -> Self {
        ItemId(v)
    }
}

/// Identifier of a ranking inside a [`RankingStore`]: the dense index of the
/// ranking in insertion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct RankingId(pub u32);

impl fmt::Display for RankingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

impl RankingId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Errors raised when constructing rankings or stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankingError {
    /// A ranking contained the same item at two ranks.
    DuplicateItem(ItemId),
    /// A ranking's length did not match the store's fixed `k`.
    WrongLength { expected: usize, got: usize },
    /// An empty ranking was supplied.
    Empty,
}

impl fmt::Display for RankingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankingError::DuplicateItem(i) => write!(f, "duplicate item {i} in ranking"),
            RankingError::WrongLength { expected, got } => {
                write!(f, "ranking of length {got}, store expects k = {expected}")
            }
            RankingError::Empty => write!(f, "empty ranking"),
        }
    }
}

impl std::error::Error for RankingError {}

/// An owned top-k list: `items[r]` is the item ranked at position `r`
/// (`r = 0` is the top rank). Items are pairwise distinct.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ranking {
    items: Box<[ItemId]>,
}

impl Ranking {
    /// Builds a ranking from top-to-bottom items, validating distinctness.
    pub fn new<I: IntoIterator<Item = u32>>(items: I) -> Result<Self, RankingError> {
        let items: Vec<ItemId> = items.into_iter().map(ItemId).collect();
        if items.is_empty() {
            return Err(RankingError::Empty);
        }
        let mut sorted = items.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                return Err(RankingError::DuplicateItem(w[0]));
            }
        }
        Ok(Ranking {
            items: items.into_boxed_slice(),
        })
    }

    /// The ranking size `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.items.len()
    }

    /// Items from the top rank downwards.
    #[inline]
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// The rank of `item`, or `None` if the item is not contained.
    pub fn rank_of(&self, item: ItemId) -> Option<u32> {
        self.items.iter().position(|&i| i == item).map(|p| p as u32)
    }
}

impl AsRef<[ItemId]> for Ranking {
    fn as_ref(&self) -> &[ItemId] {
        &self.items
    }
}

/// Validates a raw item slice as a candidate size-`k` ranking without
/// allocating: exactly `k` pairwise-distinct items.
///
/// This is the non-panicking twin of the engine's insertion asserts, for
/// call sites that must *reject* malformed input instead of aborting —
/// e.g. a serving front-end parsing untrusted wire queries. The quadratic
/// distinctness scan is deliberate: `k` is small (top-*k* lists), so this
/// beats sorting for every realistic ranking size.
pub fn validate_items(items: &[ItemId], k: usize) -> Result<(), RankingError> {
    if items.len() != k {
        return Err(RankingError::WrongLength {
            expected: k,
            got: items.len(),
        });
    }
    for (i, a) in items.iter().enumerate() {
        if items[i + 1..].contains(a) {
            return Err(RankingError::DuplicateItem(*a));
        }
    }
    Ok(())
}

/// Lifecycle of one ranking-id slot of a [`RankingStore`].
///
/// Live corpora tombstone instead of erasing: index structures resolve
/// ranking content through the store at query time, so the content of any
/// slot an index may still reference must stay frozen until the indexes
/// are rebuilt. [`RankingStore::remove`] therefore only *quarantines* a
/// slot; [`RankingStore::release_removed_slots`] (called by the engine's
/// compaction pass, after every index was rebuilt from the live set)
/// turns quarantined slots into `Free` ones whose content may be
/// overwritten by [`RankingStore::insert_items_at_unchecked`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// The ranking is part of the live corpus.
    Live,
    /// Tombstoned: excluded from results, but its content is frozen —
    /// index structures built before the removal may still read it.
    Quarantined,
    /// Released: no structure references the slot; its id and row may be
    /// reused by an explicit re-insertion.
    Free,
}

/// Flat storage for a corpus of equal-size rankings.
///
/// Two parallel layouts are kept:
///
/// * `items`: row-major `n × k` item ids in rank order — used by query
///   processing (sequential scans of a ranking's content),
/// * `sorted`: per ranking, the `(item, rank)` pairs sorted by item id —
///   used for allocation-free store-to-store Footrule via a sorted merge,
///   which dominates metric-tree construction.
///
/// ## Live corpora
///
/// The store is mutable: [`RankingStore::remove`] tombstones a ranking
/// (its id keeps resolving to the frozen content, it just stops being
/// *live*), and freed slots can be re-populated in place after the
/// engine's compaction pass (see [`SlotState`]). [`RankingStore::len`]
/// spans the whole id space including dead slots — query-side epoch maps
/// are sized by it — while [`RankingStore::live_len`] counts the live
/// corpus and [`RankingStore::live_ids`] drives every index build.
#[derive(Debug, Clone)]
pub struct RankingStore {
    k: usize,
    items: Vec<ItemId>,
    sorted: Vec<(ItemId, u32)>,
    slots: Vec<SlotState>,
    live_len: usize,
    free_len: usize,
}

/// Sentinel item filling hole slots pushed by [`RankingStore::push_hole`].
const HOLE_ITEM: ItemId = ItemId(u32::MAX);

impl RankingStore {
    /// Creates an empty store for rankings of size `k`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "ranking size k must be positive");
        RankingStore {
            k,
            items: Vec::new(),
            sorted: Vec::new(),
            slots: Vec::new(),
            live_len: 0,
            free_len: 0,
        }
    }

    /// Creates an empty store with capacity for `n` rankings.
    pub fn with_capacity(k: usize, n: usize) -> Self {
        let mut s = Self::new(k);
        s.reserve_rankings(n);
        s
    }

    /// Reserves arena capacity for `n` additional rankings, so the next
    /// `n` pushes / in-place re-insertions touch the allocator only if
    /// they outgrow the reservation.
    pub fn reserve_rankings(&mut self, n: usize) {
        self.items.reserve(n * self.k);
        self.sorted.reserve(n * self.k);
        self.slots.reserve(n);
    }

    /// The fixed ranking size.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Size of the ranking-id space `0..len` — live rankings *and* dead
    /// slots. Candidate-side epoch maps are sized by this.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Number of live rankings (what queries can return).
    #[inline]
    pub fn live_len(&self) -> usize {
        self.live_len
    }

    /// Number of released (reusable) slots.
    #[inline]
    pub fn free_len(&self) -> usize {
        self.free_len
    }

    /// Number of quarantined slots (tombstoned since the last release).
    #[inline]
    pub fn quarantined_len(&self) -> usize {
        self.slots.len() - self.live_len - self.free_len
    }

    /// Whether the id space is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Appends a ranking, returning its id.
    pub fn push(&mut self, ranking: &Ranking) -> Result<RankingId, RankingError> {
        if ranking.k() != self.k {
            return Err(RankingError::WrongLength {
                expected: self.k,
                got: ranking.k(),
            });
        }
        Ok(self.push_items_unchecked(ranking.items()))
    }

    /// Appends raw items that are already known to be distinct and of
    /// length `k` (dataset generators uphold this by construction).
    pub fn push_items_unchecked(&mut self, items: &[ItemId]) -> RankingId {
        debug_assert_eq!(items.len(), self.k);
        let id = RankingId(self.len() as u32);
        self.items.extend_from_slice(items);
        let base = self.sorted.len();
        self.sorted
            .extend(items.iter().enumerate().map(|(r, &i)| (i, r as u32)));
        self.sorted[base..].sort_unstable();
        self.slots.push(SlotState::Live);
        self.live_len += 1;
        id
    }

    /// Appends a dead-from-birth slot (sentinel content, state `Free`):
    /// the building block for reconstructing a mutated corpus *at its
    /// original ids* — the oracle side of the differential mutation
    /// harness pushes a hole wherever the live corpus has none.
    pub fn push_hole(&mut self) -> RankingId {
        let id = RankingId(self.len() as u32);
        self.items.extend((0..self.k).map(|_| HOLE_ITEM));
        self.sorted.extend((0..self.k).map(|_| (HOLE_ITEM, 0u32)));
        self.slots.push(SlotState::Free);
        self.free_len += 1;
        id
    }

    /// Whether ranking `id` is live (in bounds and neither tombstoned nor
    /// a hole).
    #[inline]
    pub fn is_live(&self, id: RankingId) -> bool {
        matches!(self.slots.get(id.index()), Some(SlotState::Live))
    }

    /// Whether slot `id` was released for reuse.
    #[inline]
    pub fn is_free(&self, id: RankingId) -> bool {
        matches!(self.slots.get(id.index()), Some(SlotState::Free))
    }

    /// Tombstones ranking `id`: it stops being live but its content stays
    /// frozen (index structures built earlier may still resolve it) until
    /// [`RankingStore::release_removed_slots`]. Returns `false` when the
    /// slot was not live.
    pub fn remove(&mut self, id: RankingId) -> bool {
        match self.slots.get_mut(id.index()) {
            Some(s @ SlotState::Live) => {
                *s = SlotState::Quarantined;
                self.live_len -= 1;
                true
            }
            _ => false,
        }
    }

    /// Releases every quarantined slot for reuse. Call **only** once no
    /// index structure references the tombstoned content any more — the
    /// engine's compaction pass does, right after rebuilding every index
    /// from the live set. Returns the number of slots released.
    pub fn release_removed_slots(&mut self) -> usize {
        let mut released = 0usize;
        for s in &mut self.slots {
            if *s == SlotState::Quarantined {
                *s = SlotState::Free;
                released += 1;
            }
        }
        self.free_len += released;
        released
    }

    /// Re-populates the released slot `id` in place with raw items that
    /// are already known to be distinct and of length `k`. The id becomes
    /// live again with the new content — the re-insertion path of the
    /// mutable engine. Panics when the slot is not `Free` (live or still
    /// quarantined content must never be overwritten: index structures
    /// resolve it at query time).
    pub fn insert_items_at_unchecked(&mut self, id: RankingId, items: &[ItemId]) {
        debug_assert_eq!(items.len(), self.k);
        assert!(
            self.is_free(id),
            "slot {id} is not free; only released slots may be re-populated"
        );
        let b = id.index() * self.k;
        self.items[b..b + self.k].copy_from_slice(items);
        let sorted = &mut self.sorted[b..b + self.k];
        for (r, &i) in items.iter().enumerate() {
            sorted[r] = (i, r as u32);
        }
        sorted.sort_unstable();
        self.slots[id.index()] = SlotState::Live;
        self.live_len += 1;
        self.free_len -= 1;
    }

    /// The smallest released slot, if any — the deterministic candidate
    /// for an in-place re-insertion.
    pub fn first_free_slot(&self) -> Option<RankingId> {
        self.slots
            .iter()
            .position(|&s| s == SlotState::Free)
            .map(|i| RankingId(i as u32))
    }

    /// Appends every ranking produced by the iterator.
    pub fn extend<'a, I: IntoIterator<Item = &'a Ranking>>(
        &mut self,
        iter: I,
    ) -> Result<(), RankingError> {
        for r in iter {
            self.push(r)?;
        }
        Ok(())
    }

    /// The items of ranking `id` in rank order.
    #[inline]
    pub fn items(&self, id: RankingId) -> &[ItemId] {
        let b = id.index() * self.k;
        &self.items[b..b + self.k]
    }

    /// The `(item, rank)` pairs of ranking `id`, sorted by item id.
    #[inline]
    pub fn sorted_pairs(&self, id: RankingId) -> &[(ItemId, u32)] {
        let b = id.index() * self.k;
        &self.sorted[b..b + self.k]
    }

    /// Materializes ranking `id` as an owned [`Ranking`].
    pub fn ranking(&self, id: RankingId) -> Ranking {
        Ranking {
            items: self.items(id).to_vec().into_boxed_slice(),
        }
    }

    /// Iterates over the whole ranking-id space, dead slots included.
    /// Pristine (never-mutated) stores have no dead slots, so this is the
    /// corpus; mutated stores are enumerated via
    /// [`RankingStore::live_ids`] instead.
    pub fn ids(&self) -> impl Iterator<Item = RankingId> + '_ {
        (0..self.len() as u32).map(RankingId)
    }

    /// Iterates over the live ranking ids, ascending — what every index
    /// build and linear oracle runs over.
    pub fn live_ids(&self) -> impl Iterator<Item = RankingId> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, &s)| s == SlotState::Live)
            .map(|(i, _)| RankingId(i as u32))
    }

    /// The largest possible Footrule distance between two stored rankings.
    #[inline]
    pub fn max_distance(&self) -> u32 {
        crate::footrule::max_distance(self.k)
    }

    /// Approximate heap footprint in bytes (used by the Table 6 experiment).
    pub fn heap_bytes(&self) -> usize {
        self.items.capacity() * std::mem::size_of::<ItemId>()
            + self.sorted.capacity() * std::mem::size_of::<(ItemId, u32)>()
            + self.slots.capacity() * std::mem::size_of::<SlotState>()
    }

    /// Drops trailing dead slots entirely (ids included) and returns the
    /// arenas' spare capacity to the allocator. Interior dead slots keep
    /// their ids (ids are positional); only the tail can shrink the id
    /// space. **Truncated tail ids will be re-assigned by future
    /// pushes** — callers that promise monotone fresh ids (the engine's
    /// `insert_ranking` does) must not call this; it serves owners of a
    /// private id space, e.g. throwaway stores.
    pub fn compact_storage(&mut self) {
        while matches!(self.slots.last(), Some(SlotState::Free)) {
            self.slots.pop();
            self.free_len -= 1;
            self.items.truncate(self.slots.len() * self.k);
            self.sorted.truncate(self.slots.len() * self.k);
        }
        self.items.shrink_to_fit();
        self.sorted.shrink_to_fit();
        self.slots.shrink_to_fit();
    }

    /// Decomposes the store into its flat persistence form. The `sorted`
    /// arena is split into two `u32` planes because the layout of a Rust
    /// tuple is unspecified — two plain arrays round-trip bytes exactly.
    #[doc(hidden)]
    pub fn export_parts(&self) -> StoreParts {
        let mut sorted_items = Vec::with_capacity(self.sorted.len());
        let mut sorted_ranks = Vec::with_capacity(self.sorted.len());
        for &(item, rank) in &self.sorted {
            sorted_items.push(item.0);
            sorted_ranks.push(rank);
        }
        StoreParts {
            k: self.k as u32,
            items: item_vec_into_u32(self.items.clone()),
            sorted_items,
            sorted_ranks,
            slots: self
                .slots
                .iter()
                .map(|s| match s {
                    SlotState::Live => 0u8,
                    SlotState::Quarantined => 1,
                    SlotState::Free => 2,
                })
                .collect(),
        }
    }

    /// Rebuilds a store from its flat persistence form, validating the
    /// structural invariants (arena lengths, slot codes) so that a
    /// corrupted-but-checksum-passing payload is rejected instead of
    /// producing a silently-wrong corpus.
    #[doc(hidden)]
    pub fn from_parts(parts: StoreParts) -> Result<Self, String> {
        let k = parts.k as usize;
        if k == 0 {
            return Err("store k must be positive".into());
        }
        let n = parts.slots.len();
        if parts.items.len() != n * k {
            return Err(format!(
                "items arena length {} != {} slots × k {}",
                parts.items.len(),
                n,
                k
            ));
        }
        if parts.sorted_items.len() != n * k || parts.sorted_ranks.len() != n * k {
            return Err("sorted arena planes disagree with the slot count".into());
        }
        let mut live_len = 0usize;
        let mut free_len = 0usize;
        let mut slots = Vec::with_capacity(n);
        for &code in &parts.slots {
            slots.push(match code {
                0 => {
                    live_len += 1;
                    SlotState::Live
                }
                1 => SlotState::Quarantined,
                2 => {
                    free_len += 1;
                    SlotState::Free
                }
                other => return Err(format!("unknown slot state code {other}")),
            });
        }
        let mut sorted = Vec::with_capacity(n * k);
        for (i, (&item, &rank)) in parts
            .sorted_items
            .iter()
            .zip(&parts.sorted_ranks)
            .enumerate()
        {
            if rank as usize >= k && item != HOLE_ITEM.0 {
                return Err(format!("sorted rank {rank} out of bounds at entry {i}"));
            }
            sorted.push((ItemId(item), rank));
        }
        for row in sorted.chunks_exact(k) {
            if row.windows(2).any(|w| w[0].0 > w[1].0) {
                return Err("sorted arena row not sorted by item id".into());
            }
        }
        Ok(RankingStore {
            k,
            items: item_vec_from_u32(parts.items),
            sorted,
            slots,
            live_len,
            free_len,
        })
    }
}

/// Flat persistence form of a [`RankingStore`] (see
/// [`RankingStore::export_parts`]). Slot codes: 0 = live, 1 = quarantined,
/// 2 = free.
#[doc(hidden)]
#[derive(Debug, Clone)]
pub struct StoreParts {
    pub k: u32,
    pub items: Vec<u32>,
    pub sorted_items: Vec<u32>,
    pub sorted_ranks: Vec<u32>,
    pub slots: Vec<u8>,
}

/// Reinterprets a `Vec<ItemId>` as its raw `Vec<u32>` without copying
/// (`ItemId` is `repr(transparent)` over `u32`).
#[doc(hidden)]
pub fn item_vec_into_u32(v: Vec<ItemId>) -> Vec<u32> {
    let mut v = std::mem::ManuallyDrop::new(v);
    // SAFETY: ItemId is #[repr(transparent)] over u32 — identical size,
    // alignment and validity; the allocation is transferred, not copied.
    unsafe { Vec::from_raw_parts(v.as_mut_ptr() as *mut u32, v.len(), v.capacity()) }
}

/// Reinterprets a raw `Vec<u32>` as a `Vec<ItemId>` without copying.
#[doc(hidden)]
pub fn item_vec_from_u32(v: Vec<u32>) -> Vec<ItemId> {
    let mut v = std::mem::ManuallyDrop::new(v);
    // SAFETY: see `item_vec_into_u32` — the transparent wrapper accepts
    // every u32 bit pattern.
    unsafe { Vec::from_raw_parts(v.as_mut_ptr() as *mut ItemId, v.len(), v.capacity()) }
}

/// Reinterprets a `Vec<RankingId>` as its raw `Vec<u32>` without copying.
#[doc(hidden)]
pub fn ranking_vec_into_u32(v: Vec<RankingId>) -> Vec<u32> {
    let mut v = std::mem::ManuallyDrop::new(v);
    // SAFETY: RankingId is #[repr(transparent)] over u32.
    unsafe { Vec::from_raw_parts(v.as_mut_ptr() as *mut u32, v.len(), v.capacity()) }
}

/// Reinterprets a raw `Vec<u32>` as a `Vec<RankingId>` without copying.
#[doc(hidden)]
pub fn ranking_vec_from_u32(v: Vec<u32>) -> Vec<RankingId> {
    let mut v = std::mem::ManuallyDrop::new(v);
    // SAFETY: see `ranking_vec_into_u32`.
    unsafe { Vec::from_raw_parts(v.as_mut_ptr() as *mut RankingId, v.len(), v.capacity()) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_rejects_duplicates() {
        assert_eq!(
            Ranking::new([1, 2, 1]),
            Err(RankingError::DuplicateItem(ItemId(1)))
        );
    }

    #[test]
    fn validate_items_checks_length_and_distinctness() {
        let ok = [4, 9, 2].map(ItemId);
        assert_eq!(validate_items(&ok, 3), Ok(()));
        assert_eq!(
            validate_items(&ok, 4),
            Err(RankingError::WrongLength {
                expected: 4,
                got: 3
            })
        );
        let dup = [4, 9, 4].map(ItemId);
        assert_eq!(
            validate_items(&dup, 3),
            Err(RankingError::DuplicateItem(ItemId(4)))
        );
        // k = 0 with an empty slice is valid (vacuously distinct).
        assert_eq!(validate_items(&[], 0), Ok(()));
    }

    #[test]
    fn ranking_rejects_empty() {
        assert_eq!(Ranking::new([]), Err(RankingError::Empty));
    }

    #[test]
    fn ranking_rank_of() {
        let r = Ranking::new([5, 3, 9]).unwrap();
        assert_eq!(r.rank_of(ItemId(5)), Some(0));
        assert_eq!(r.rank_of(ItemId(9)), Some(2));
        assert_eq!(r.rank_of(ItemId(4)), None);
        assert_eq!(r.k(), 3);
    }

    #[test]
    fn store_roundtrip() {
        let mut store = RankingStore::new(4);
        let a = Ranking::new([2, 5, 4, 3]).unwrap();
        let b = Ranking::new([1, 4, 5, 9]).unwrap();
        let ia = store.push(&a).unwrap();
        let ib = store.push(&b).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.ranking(ia), a);
        assert_eq!(store.ranking(ib), b);
        assert_eq!(
            store.items(ib),
            &[ItemId(1), ItemId(4), ItemId(5), ItemId(9)]
        );
    }

    #[test]
    fn store_sorted_pairs_are_sorted() {
        let mut store = RankingStore::new(4);
        let id = store.push(&Ranking::new([9, 1, 7, 3]).unwrap()).unwrap();
        let pairs = store.sorted_pairs(id);
        assert_eq!(
            pairs,
            &[
                (ItemId(1), 1),
                (ItemId(3), 3),
                (ItemId(7), 2),
                (ItemId(9), 0)
            ]
        );
    }

    #[test]
    fn store_rejects_wrong_length() {
        let mut store = RankingStore::new(3);
        let r = Ranking::new([1, 2]).unwrap();
        assert_eq!(
            store.push(&r),
            Err(RankingError::WrongLength {
                expected: 3,
                got: 2
            })
        );
    }

    #[test]
    fn remove_quarantines_and_release_frees() {
        let mut store = RankingStore::new(3);
        let a = store.push_items_unchecked(&[1, 2, 3].map(ItemId));
        let b = store.push_items_unchecked(&[4, 5, 6].map(ItemId));
        assert_eq!(store.live_len(), 2);
        assert!(store.remove(a));
        assert!(!store.remove(a), "double remove is a no-op");
        assert!(!store.is_live(a));
        assert!(store.is_live(b));
        assert_eq!(store.live_len(), 1);
        assert_eq!(store.quarantined_len(), 1);
        // Quarantined content stays resolvable (indexes may reference it).
        assert_eq!(store.items(a), &[1, 2, 3].map(ItemId));
        assert!(!store.is_free(a));
        assert_eq!(store.release_removed_slots(), 1);
        assert!(store.is_free(a));
        assert_eq!(store.first_free_slot(), Some(a));
        assert_eq!(store.live_ids().collect::<Vec<_>>(), vec![b]);
        assert_eq!(store.len(), 2, "ids are positional and persist");
    }

    #[test]
    fn reinsertion_reuses_the_released_slot_in_place() {
        let mut store = RankingStore::new(3);
        let a = store.push_items_unchecked(&[1, 2, 3].map(ItemId));
        store.push_items_unchecked(&[4, 5, 6].map(ItemId));
        store.remove(a);
        store.release_removed_slots();
        let before = store.heap_bytes();
        store.insert_items_at_unchecked(a, &[9, 7, 8].map(ItemId));
        assert_eq!(store.heap_bytes(), before, "in-place reuse grows nothing");
        assert!(store.is_live(a));
        assert_eq!(store.items(a), &[9, 7, 8].map(ItemId));
        assert_eq!(
            store.sorted_pairs(a),
            &[(ItemId(7), 1), (ItemId(8), 2), (ItemId(9), 0)]
        );
        assert_eq!(store.live_len(), 2);
        assert_eq!(store.free_len(), 0);
    }

    #[test]
    #[should_panic(expected = "not free")]
    fn reinsertion_into_live_slot_panics() {
        let mut store = RankingStore::new(2);
        let a = store.push_items_unchecked(&[1, 2].map(ItemId));
        store.insert_items_at_unchecked(a, &[3, 4].map(ItemId));
    }

    #[test]
    #[should_panic(expected = "not free")]
    fn reinsertion_into_quarantined_slot_panics() {
        // Quarantined content may still be referenced by an index: it must
        // never be overwritten before the release.
        let mut store = RankingStore::new(2);
        let a = store.push_items_unchecked(&[1, 2].map(ItemId));
        store.remove(a);
        store.insert_items_at_unchecked(a, &[3, 4].map(ItemId));
    }

    #[test]
    fn holes_reconstruct_a_mutated_id_space() {
        let mut store = RankingStore::new(2);
        store.push_items_unchecked(&[1, 2].map(ItemId));
        let hole = store.push_hole();
        store.push_items_unchecked(&[5, 6].map(ItemId));
        assert_eq!(store.len(), 3);
        assert_eq!(store.live_len(), 2);
        assert!(!store.is_live(hole));
        assert!(store.is_free(hole));
        let live: Vec<u32> = store.live_ids().map(|id| id.0).collect();
        assert_eq!(live, vec![0, 2]);
        // A hole can be populated later — same path as slot reuse.
        store.insert_items_at_unchecked(hole, &[8, 9].map(ItemId));
        assert!(store.is_live(hole));
    }

    #[test]
    fn compact_storage_truncates_trailing_dead_slots_only() {
        let mut store = RankingStore::new(2);
        let a = store.push_items_unchecked(&[1, 2].map(ItemId));
        let b = store.push_items_unchecked(&[3, 4].map(ItemId));
        let c = store.push_items_unchecked(&[5, 6].map(ItemId));
        store.remove(a);
        store.remove(c);
        store.release_removed_slots();
        store.compact_storage();
        // The trailing slot is gone, the interior hole must survive —
        // ranking b's id is positional.
        assert_eq!(store.len(), 2);
        assert!(store.is_live(b));
        assert_eq!(store.items(b), &[3, 4].map(ItemId));
        assert_eq!(store.free_len(), 1);
    }

    #[test]
    fn store_ids_enumerate() {
        let mut store = RankingStore::new(2);
        for i in 0..5u32 {
            store
                .push(&Ranking::new([i * 2, i * 2 + 1]).unwrap())
                .unwrap();
        }
        let ids: Vec<_> = store.ids().collect();
        assert_eq!(ids.len(), 5);
        assert_eq!(ids[3], RankingId(3));
    }
}
