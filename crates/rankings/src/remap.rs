//! Dense item-id remapping for CSR index layouts.
//!
//! Item ids are arbitrary `u32`s, but every index hot path wants to address
//! per-item state (postings offsets, query ranks, accumulators) by a dense
//! `0..m` coordinate so that a lookup is an array load instead of a hash
//! probe. [`ItemRemap`] assigns every distinct item of a corpus a dense id
//! in ascending raw-id order, built **once** per corpus and shared across
//! all index structures (the engine hands one `Arc<ItemRemap>` to every
//! index it builds).
//!
//! Two representations are kept behind one API:
//!
//! * **Direct** — a `raw id → dense id` lookup table, used whenever the raw
//!   id space is reasonably dense (the synthetic NYT/Yago corpora and any
//!   dictionary-encoded real dataset). Lookup is one bounds check and one
//!   load.
//! * **Hashed** — an Fx hash map fallback for pathologically sparse id
//!   spaces, so adversarial inputs cannot blow up memory.

use crate::hash::{fx_map_with_capacity, FxHashMap};
use crate::ranking::{ItemId, RankingStore};

/// Sentinel marking an absent raw id in the direct table.
const ABSENT: u32 = u32::MAX;

#[derive(Debug, Clone)]
enum Table {
    /// `table[raw] = dense`, `ABSENT` where the raw id is unused.
    Direct(Vec<u32>),
    /// Sparse fallback.
    Hashed(FxHashMap<u32, u32>),
}

/// An immutable `ItemId → dense u32` bijection over a corpus' distinct
/// items; dense ids run `0..len()` in ascending raw-id order.
#[derive(Debug, Clone)]
pub struct ItemRemap {
    table: Table,
    len: u32,
}

impl ItemRemap {
    /// Builds the remap over every distinct item of the store's **live**
    /// rankings (identical to all-rankings on a pristine store).
    pub fn build(store: &RankingStore) -> Self {
        let mut raw: Vec<u32> = Vec::with_capacity(store.live_len() * store.k());
        for id in store.live_ids() {
            raw.extend(store.items(id).iter().map(|i| i.0));
        }
        Self::from_raw_ids(raw)
    }

    /// A remap extending `self` with `extra` raw items: every item already
    /// mapped keeps its dense id, new items get fresh dense ids appended
    /// in first-appearance order. This is how the engine's compaction pass
    /// grows the corpus remap across rebuilds — surviving items keep their
    /// dense coordinates, so per-dense-id state (posting-length tables,
    /// scratch stamp arrays) stays valid and only grows.
    ///
    /// Note: unlike a fresh [`ItemRemap::build`], a grown remap's dense
    /// ids are *not* globally ascending in raw id (only within the
    /// original base). No consumer depends on that order — CSR layouts
    /// and the flat query maps need the bijection, not the order.
    pub fn grown<I: IntoIterator<Item = ItemId>>(&self, extra: I) -> ItemRemap {
        let mut len = self.len;
        let mut table = self.table.clone();
        for item in extra {
            let raw = item.0;
            let present = match &table {
                Table::Direct(t) => matches!(t.get(raw as usize), Some(&d) if d != ABSENT),
                Table::Hashed(m) => m.contains_key(&raw),
            };
            if present {
                continue;
            }
            match &mut table {
                Table::Direct(t) => {
                    let fits = (raw as usize) < t.len();
                    // Keep the direct table while the extension stays
                    // within the 8×-overhead budget of `from_raw_ids`;
                    // convert to hashing when a sparse insert would blow
                    // the table up.
                    if fits || (raw as usize) < (len as usize + 1) * 8 + 1024 {
                        if !fits {
                            t.resize(raw as usize + 1, ABSENT);
                        }
                        t[raw as usize] = len;
                    } else {
                        let mut m = fx_map_with_capacity(len as usize + 1);
                        for (r, &d) in t.iter().enumerate() {
                            if d != ABSENT {
                                m.insert(r as u32, d);
                            }
                        }
                        m.insert(raw, len);
                        table = Table::Hashed(m);
                    }
                }
                Table::Hashed(m) => {
                    m.insert(raw, len);
                }
            }
            len += 1;
        }
        ItemRemap { table, len }
    }

    /// Builds the remap from an arbitrary collection of raw item ids
    /// (duplicates allowed).
    pub fn from_raw_ids(mut raw: Vec<u32>) -> Self {
        raw.sort_unstable();
        raw.dedup();
        let len = raw.len() as u32;
        let max = raw.last().copied().unwrap_or(0) as usize;
        // A direct table costs max+1 slots; accept up to 8× overhead over
        // the distinct count (plus slack for tiny corpora) before falling
        // back to hashing.
        let table = if raw.is_empty() || max < raw.len() * 8 + 1024 {
            let mut t = vec![ABSENT; if raw.is_empty() { 0 } else { max + 1 }];
            for (dense, &r) in raw.iter().enumerate() {
                t[r as usize] = dense as u32;
            }
            Table::Direct(t)
        } else {
            let mut m = fx_map_with_capacity(raw.len());
            for (dense, &r) in raw.iter().enumerate() {
                m.insert(r, dense as u32);
            }
            Table::Hashed(m)
        };
        ItemRemap { table, len }
    }

    /// The dense id of `item`, or `None` if the item is not in the corpus.
    #[inline]
    pub fn dense(&self, item: ItemId) -> Option<u32> {
        match &self.table {
            Table::Direct(t) => match t.get(item.0 as usize) {
                Some(&d) if d != ABSENT => Some(d),
                _ => None,
            },
            Table::Hashed(m) => m.get(&item.0).copied(),
        }
    }

    /// Number of distinct items (= the dense id space `0..len`).
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the corpus had no items at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Heap footprint in bytes: exact for the direct table; for the
    /// hashed fallback, buckets plus one control byte per slot (the hash
    /// map's allocation padding is not observable from safe code).
    pub fn heap_bytes(&self) -> usize {
        match &self.table {
            Table::Direct(t) => t.capacity() * std::mem::size_of::<u32>(),
            Table::Hashed(m) => m.capacity() * (std::mem::size_of::<(u32, u32)>() + 1),
        }
    }

    /// Decomposes the remap into its flat persistence form. The hashed
    /// fallback is emitted as parallel key/value planes sorted by key, so
    /// the serialized bytes are deterministic across runs.
    #[doc(hidden)]
    pub fn export_parts(&self) -> RemapParts {
        match &self.table {
            Table::Direct(t) => RemapParts {
                hashed: false,
                len: self.len,
                keys: Vec::new(),
                values: t.clone(),
            },
            Table::Hashed(m) => {
                let mut pairs: Vec<(u32, u32)> = m.iter().map(|(&k, &v)| (k, v)).collect();
                pairs.sort_unstable();
                RemapParts {
                    hashed: true,
                    len: self.len,
                    keys: pairs.iter().map(|&(k, _)| k).collect(),
                    values: pairs.iter().map(|&(_, v)| v).collect(),
                }
            }
        }
    }

    /// Rebuilds a remap from its flat persistence form, validating that
    /// the mapped dense ids form exactly `0..len`.
    #[doc(hidden)]
    pub fn from_parts(parts: RemapParts) -> Result<Self, String> {
        let len = parts.len;
        let check_bijection = |dense: &mut dyn Iterator<Item = u32>| -> Result<(), String> {
            let mut seen = vec![false; len as usize];
            let mut count = 0u32;
            for d in dense {
                match seen.get_mut(d as usize) {
                    Some(s @ false) => *s = true,
                    Some(_) => return Err(format!("dense id {d} mapped twice")),
                    None => return Err(format!("dense id {d} out of range 0..{len}")),
                }
                count += 1;
            }
            if count != len {
                return Err(format!("{count} dense ids mapped, header says {len}"));
            }
            Ok(())
        };
        let table = if parts.hashed {
            if parts.keys.len() != parts.values.len() {
                return Err("hashed remap key/value planes disagree".into());
            }
            check_bijection(&mut parts.values.iter().copied())?;
            let mut m = fx_map_with_capacity(parts.keys.len());
            for (&k, &v) in parts.keys.iter().zip(&parts.values) {
                if m.insert(k, v).is_some() {
                    return Err(format!("raw id {k} mapped twice"));
                }
            }
            Table::Hashed(m)
        } else {
            if !parts.keys.is_empty() {
                return Err("direct remap carries a key plane".into());
            }
            check_bijection(&mut parts.values.iter().copied().filter(|&d| d != ABSENT))?;
            Table::Direct(parts.values)
        };
        Ok(ItemRemap { table, len })
    }
}

/// Flat persistence form of an [`ItemRemap`] (see
/// [`ItemRemap::export_parts`]). Direct tables store the raw→dense lookup
/// in `values` (with `u32::MAX` marking absent raw ids, `keys` empty);
/// hashed tables store sorted parallel key/value planes.
#[doc(hidden)]
#[derive(Debug, Clone)]
pub struct RemapParts {
    pub hashed: bool,
    pub len: u32,
    pub keys: Vec<u32>,
    pub values: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_ids_ascend_with_raw_ids() {
        let remap = ItemRemap::from_raw_ids(vec![9, 3, 3, 40, 0, 9]);
        assert_eq!(remap.len(), 4);
        assert_eq!(remap.dense(ItemId(0)), Some(0));
        assert_eq!(remap.dense(ItemId(3)), Some(1));
        assert_eq!(remap.dense(ItemId(9)), Some(2));
        assert_eq!(remap.dense(ItemId(40)), Some(3));
        assert_eq!(remap.dense(ItemId(1)), None);
        assert_eq!(remap.dense(ItemId(1_000_000)), None);
    }

    #[test]
    fn sparse_id_space_falls_back_to_hashing() {
        let raw: Vec<u32> = (0..100).map(|i| i * 10_000_000).collect();
        let remap = ItemRemap::from_raw_ids(raw);
        assert!(matches!(remap.table, Table::Hashed(_)));
        assert_eq!(remap.len(), 100);
        assert_eq!(remap.dense(ItemId(990_000_000)), Some(99));
        assert_eq!(remap.dense(ItemId(5)), None);
    }

    #[test]
    fn empty_corpus_maps_nothing() {
        let remap = ItemRemap::from_raw_ids(Vec::new());
        assert!(remap.is_empty());
        assert_eq!(remap.dense(ItemId(0)), None);
    }

    #[test]
    fn grown_preserves_existing_dense_ids_and_appends_new() {
        let base = ItemRemap::from_raw_ids(vec![0, 3, 9, 40]);
        let grown = base.grown([9u32, 41, 2, 41, 0].map(ItemId));
        // Old items keep their dense coordinates.
        for raw in [0u32, 3, 9, 40] {
            assert_eq!(grown.dense(ItemId(raw)), base.dense(ItemId(raw)));
        }
        // New items append in first-appearance order.
        assert_eq!(grown.dense(ItemId(41)), Some(4));
        assert_eq!(grown.dense(ItemId(2)), Some(5));
        assert_eq!(grown.len(), 6);
        assert_eq!(grown.dense(ItemId(7)), None);
        // The base is untouched.
        assert_eq!(base.len(), 4);
        assert_eq!(base.dense(ItemId(41)), None);
    }

    #[test]
    fn grown_converts_to_hashing_on_pathological_sparseness() {
        let base = ItemRemap::from_raw_ids((0..32).collect());
        assert!(matches!(base.table, Table::Direct(_)));
        let grown = base.grown([ItemId(900_000_000)]);
        assert!(matches!(grown.table, Table::Hashed(_)));
        assert_eq!(grown.dense(ItemId(900_000_000)), Some(32));
        for raw in 0..32u32 {
            assert_eq!(grown.dense(ItemId(raw)), Some(raw));
        }
    }

    #[test]
    fn grown_from_hashed_base_stays_hashed() {
        let raw: Vec<u32> = (0..100).map(|i| i * 10_000_000).collect();
        let base = ItemRemap::from_raw_ids(raw);
        assert!(matches!(base.table, Table::Hashed(_)));
        let grown = base.grown([ItemId(5), ItemId(10_000_000)]);
        assert_eq!(grown.dense(ItemId(5)), Some(100));
        assert_eq!(grown.dense(ItemId(10_000_000)), Some(1));
        assert_eq!(grown.len(), 101);
    }

    #[test]
    fn build_skips_tombstoned_rankings() {
        let mut store = RankingStore::new(3);
        let a = store.push_items_unchecked(&[5, 1, 9].map(ItemId));
        store.push_items_unchecked(&[1, 7, 2].map(ItemId));
        store.remove(a);
        let remap = ItemRemap::build(&store);
        assert_eq!(remap.len(), 3);
        assert_eq!(remap.dense(ItemId(5)), None, "dead-only item unmapped");
        assert_eq!(remap.dense(ItemId(9)), None);
        assert!(remap.dense(ItemId(1)).is_some());
    }

    #[test]
    fn build_covers_every_store_item() {
        let mut store = RankingStore::new(3);
        store.push_items_unchecked(&[5, 1, 9].map(ItemId));
        store.push_items_unchecked(&[1, 7, 2].map(ItemId));
        let remap = ItemRemap::build(&store);
        assert_eq!(remap.len(), 5);
        for raw in [1u32, 2, 5, 7, 9] {
            assert!(remap.dense(ItemId(raw)).is_some(), "item {raw} unmapped");
        }
        // Distinct items get distinct dense ids inside 0..len.
        let mut seen = vec![false; remap.len()];
        for raw in [1u32, 2, 5, 7, 9] {
            let d = remap.dense(ItemId(raw)).unwrap() as usize;
            assert!(!seen[d]);
            seen[d] = true;
        }
    }
}
