//! Reusable, allocation-free per-query working memory.
//!
//! Every query-processing algorithm in this workspace needs some per-query
//! associative state: the query's item → rank map, a candidate set, a
//! count or bound accumulator per candidate ranking. Allocating fresh hash
//! maps per query is exactly the overhead the hot path cannot afford, so
//! this module provides **epoch-versioned sparse arrays**: flat vectors
//! indexed by dense coordinates ([`crate::ItemRemap`] dense item ids on
//! the query side, `RankingId` indices on the candidate side) whose
//! entries are valid only when their stamp equals the current epoch.
//! "Clearing" is a single epoch bump; steady-state queries therefore touch
//! no allocator at all once the arrays have grown to the corpus size.
//!
//! ## Epoch invariants
//!
//! * The epoch counter starts at 1 and is bumped by [`EpochMap::begin`];
//!   a stamp of 0 is never current, so freshly grown (zeroed) array tails
//!   are automatically "absent".
//! * On `u32` wrap the stamp array is zeroed once and the epoch restarts
//!   at 1 — correctness never depends on stamps from 4 billion queries
//!   ago.
//! * Keys removed via [`EpochMap::retain`] get their stamp reset to 0, so
//!   membership tests and re-insertions behave as if the key was never
//!   seen this epoch.

use crate::footrule::one_side_total;
use crate::kernel::{Kernel, KERNEL_CHUNK};
use crate::ranking::{ItemId, RankingId};
use crate::remap::ItemRemap;

/// An epoch-versioned sparse map from a dense `u32` key space to copyable
/// values, with insertion-ordered key iteration.
#[derive(Debug, Clone, Default)]
pub struct EpochMap<T> {
    epoch: u32,
    stamps: Vec<u32>,
    vals: Vec<T>,
    keys: Vec<u32>,
}

impl<T: Copy + Default> EpochMap<T> {
    /// An empty map; arrays grow on [`EpochMap::begin`].
    pub fn new() -> Self {
        EpochMap {
            epoch: 0,
            stamps: Vec::new(),
            vals: Vec::new(),
            keys: Vec::new(),
        }
    }

    /// Starts a new epoch over the key universe `0..universe`. All prior
    /// entries become absent; allocates only when the universe grew.
    pub fn begin(&mut self, universe: usize) {
        if self.stamps.len() < universe {
            self.stamps.resize(universe, 0);
            self.vals.resize(universe, T::default());
        }
        self.keys.clear();
        if self.epoch == u32::MAX {
            self.stamps.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Whether `key` is present this epoch.
    #[inline]
    pub fn contains(&self, key: u32) -> bool {
        self.stamps[key as usize] == self.epoch
    }

    /// The value of `key`, if present this epoch.
    #[inline]
    pub fn get(&self, key: u32) -> Option<T> {
        if self.contains(key) {
            Some(self.vals[key as usize])
        } else {
            None
        }
    }

    /// Mutable access to the value of `key`, if present this epoch.
    #[inline]
    pub fn get_mut(&mut self, key: u32) -> Option<&mut T> {
        if self.contains(key) {
            Some(&mut self.vals[key as usize])
        } else {
            None
        }
    }

    /// Inserts `key` with `val`; `key` must be absent this epoch.
    #[inline]
    pub fn insert(&mut self, key: u32, val: T) {
        debug_assert!(!self.contains(key), "duplicate insert of key {key}");
        self.stamps[key as usize] = self.epoch;
        self.vals[key as usize] = val;
        self.keys.push(key);
    }

    /// Marks `key` as present (default value if new); returns a mutable
    /// reference to its value.
    #[inline]
    pub fn probe(&mut self, key: u32) -> &mut T {
        let i = key as usize;
        if self.stamps[i] != self.epoch {
            self.stamps[i] = self.epoch;
            self.vals[i] = T::default();
            self.keys.push(key);
        }
        &mut self.vals[i]
    }

    /// Marks `key` as present with the default value; returns whether the
    /// key was newly inserted.
    #[inline]
    pub fn mark(&mut self, key: u32) -> bool {
        let i = key as usize;
        if self.stamps[i] == self.epoch {
            return false;
        }
        self.stamps[i] = self.epoch;
        self.vals[i] = T::default();
        self.keys.push(key);
        true
    }

    /// The keys present this epoch, in insertion order.
    #[inline]
    pub fn keys(&self) -> &[u32] {
        &self.keys
    }

    /// Number of present keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no key is present this epoch.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Keeps only the entries for which `f` returns `true`, preserving
    /// insertion order; removed keys become absent.
    pub fn retain(&mut self, mut f: impl FnMut(u32, &mut T) -> bool) {
        let mut w = 0usize;
        for r in 0..self.keys.len() {
            let key = self.keys[r];
            if f(key, &mut self.vals[key as usize]) {
                self.keys[w] = key;
                w += 1;
            } else {
                self.stamps[key as usize] = 0;
            }
        }
        self.keys.truncate(w);
    }
}

/// An epoch-versioned sparse set (an [`EpochMap`] without payload).
pub type EpochSet = EpochMap<()>;

/// A flat, epoch-versioned variant of [`crate::PositionMap`]: the query's
/// item → rank map stored in dense-item-id arrays so a candidate item
/// lookup is two array loads instead of a hash probe.
///
/// Query items missing from the corpus (hence from the remap) are simply
/// not stored; they can never match a stored candidate item, and the
/// distance formula accounts for them through the query-side base total.
#[derive(Debug, Clone, Default)]
pub struct FlatPositionMap {
    k: u32,
    epoch: u32,
    stamps: Vec<u32>,
    ranks: Vec<u32>,
}

impl FlatPositionMap {
    /// An empty map; sized on first [`FlatPositionMap::build`].
    pub fn new() -> Self {
        Self::default()
    }

    /// (Re)builds the map for a query ranking. `O(k)`, allocation-free
    /// once the arrays cover the remap's dense id space.
    pub fn build(&mut self, remap: &ItemRemap, query: &[ItemId]) {
        self.k = query.len() as u32;
        let m = remap.len();
        if self.stamps.len() < m {
            self.stamps.resize(m, 0);
            self.ranks.resize(m, 0);
        }
        if self.epoch == u32::MAX {
            self.stamps.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
        for (r, &item) in query.iter().enumerate() {
            if let Some(d) = remap.dense(item) {
                debug_assert_ne!(
                    self.stamps[d as usize], self.epoch,
                    "duplicate item in query ranking"
                );
                self.stamps[d as usize] = self.epoch;
                self.ranks[d as usize] = r as u32;
            }
        }
    }

    /// The ranking size `k` of the current query.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The query rank of the item with dense id `d`, if contained.
    #[inline]
    pub fn rank_of_dense(&self, d: u32) -> Option<u32> {
        if self.stamps[d as usize] == self.epoch {
            Some(self.ranks[d as usize])
        } else {
            None
        }
    }

    /// The query rank of `item`, if contained.
    #[inline]
    pub fn rank_of(&self, remap: &ItemRemap, item: ItemId) -> Option<u32> {
        self.rank_of_dense(remap.dense(item)?)
    }

    /// Footrule distance from the current query to `candidate`
    /// (rank-ordered items of an equal-size ranking). Mirrors
    /// [`crate::PositionMap::distance_to`].
    pub fn distance_to(&self, remap: &ItemRemap, candidate: &[ItemId]) -> u32 {
        debug_assert_eq!(candidate.len() as u32, self.k);
        let k = self.k;
        let mut dist = one_side_total(k as usize);
        for (p, &item) in candidate.iter().enumerate() {
            let p = p as u32;
            match self.rank_of(remap, item) {
                Some(qp) => {
                    dist += p.abs_diff(qp);
                    dist -= k - qp;
                }
                None => dist += k - p,
            }
        }
        dist
    }

    /// [`FlatPositionMap::distance_to`] via the chunked, branchless
    /// [`Kernel::Simd`] formulation: candidate ranks are gathered into a
    /// small stack buffer with the artificial rank `l = k` standing in
    /// for items missing from the query, which collapses the matched and
    /// unmatched cases into one branch-free arithmetic expression
    /// (`|p − q_p| − (k − q_p)`; with `q_p = k` this is exactly the
    /// unmatched contribution `k − p`). Bit-identical to the scalar loop
    /// for every input.
    pub fn distance_to_chunked(&self, remap: &ItemRemap, candidate: &[ItemId]) -> u32 {
        debug_assert_eq!(candidate.len() as u32, self.k);
        let k = self.k as i32;
        let t_k = one_side_total(self.k as usize) as i32;
        let mut sum = 0i32;
        let mut qps = [0i32; KERNEL_CHUNK];
        let len = candidate.len();
        let mut p = 0usize;
        while p < len {
            let n = KERNEL_CHUNK.min(len - p);
            for (j, &item) in candidate[p..p + n].iter().enumerate() {
                qps[j] = self.rank_of(remap, item).map_or(k, |q| q as i32);
            }
            for (j, &qp) in qps[..n].iter().enumerate() {
                let pp = (p + j) as i32;
                sum += (pp - qp).abs() - (k - qp);
            }
            p += n;
        }
        (t_k + sum) as u32
    }

    /// Threshold-aware distance: `Some(d)` when the walk ran to
    /// completion (`d` is the exact distance, whether or not it is within
    /// `theta_raw`), `None` **strictly** when the suffix-bound early exit
    /// proved the candidate outside `theta_raw` before finishing. Callers
    /// therefore treat `None` as a guaranteed miss and may count it as a
    /// pruned validation; result sets are bit-identical across kernels by
    /// construction.
    ///
    /// The bound: each remaining position `p` contributes at least
    /// `p − k` (minimizing `|p − q_p| + q_p` over `q_p ∈ 0..=k` attains
    /// `p`), so after `j` processed items the final distance is at least
    /// `partial_j − T(k − j)` with `T(m) = m(m+1)/2`.
    pub fn distance_within(
        &self,
        remap: &ItemRemap,
        candidate: &[ItemId],
        theta_raw: u32,
        kernel: Kernel,
    ) -> Option<u32> {
        match kernel {
            Kernel::Scalar => Some(self.distance_to(remap, candidate)),
            Kernel::Simd => self.distance_within_chunked(remap, candidate, theta_raw),
        }
    }

    /// The [`Kernel::Simd`] arm of [`FlatPositionMap::distance_within`]:
    /// the chunked branchless walk with the suffix-bound check at each
    /// chunk boundary.
    pub fn distance_within_chunked(
        &self,
        remap: &ItemRemap,
        candidate: &[ItemId],
        theta_raw: u32,
    ) -> Option<u32> {
        debug_assert_eq!(candidate.len() as u32, self.k);
        let k = self.k as i32;
        let t_k = one_side_total(self.k as usize) as i32;
        // Any θ at or above the distance ceiling k(k+1) never prunes;
        // clamping also keeps the comparison in i32 for pathological θ.
        let theta = theta_raw.min(2 * t_k as u32) as i32;
        let mut sum = 0i32;
        let mut qps = [0i32; KERNEL_CHUNK];
        let len = candidate.len();
        let mut p = 0usize;
        while p < len {
            let n = KERNEL_CHUNK.min(len - p);
            for (j, &item) in candidate[p..p + n].iter().enumerate() {
                qps[j] = self.rank_of(remap, item).map_or(k, |q| q as i32);
            }
            for (j, &qp) in qps[..n].iter().enumerate() {
                let pp = (p + j) as i32;
                sum += (pp - qp).abs() - (k - qp);
            }
            p += n;
            if p < len && t_k + sum - one_side_total(len - p) as i32 > theta {
                return None;
            }
        }
        Some((t_k + sum) as u32)
    }

    /// Number of common items between the query and `candidate`.
    pub fn overlap(&self, remap: &ItemRemap, candidate: &[ItemId]) -> usize {
        candidate
            .iter()
            .filter(|&&i| self.rank_of(remap, i).is_some())
            .count()
    }
}

/// All per-query working memory of the engine, reused across queries.
///
/// One `QueryScratch` serves every algorithm (they run one at a time per
/// scratch); a warmed-up scratch makes steady-state query processing
/// perform **zero** heap allocations. The fields are public so the
/// algorithm crates can borrow them disjointly; they carry no state that
/// outlives a query beyond buffer capacity.
#[derive(Debug, Clone, Default)]
pub struct QueryScratch {
    /// Flat query-side position map (F&V validation, Blocked fallback,
    /// AdaptSearch verification).
    pub qmap: FlatPositionMap,
    /// Marker set over ranking ids (F&V candidate set; Blocked "decided").
    pub marks: EpochSet,
    /// `u32` accumulator over ranking ids (AdaptSearch prefix counts).
    pub counts: EpochMap<u32>,
    /// `(exact, tau_side, q_side)` aggregation cells over ranking ids
    /// (Blocked+Prune candidate bounds; ListMerge contributions).
    pub cells: EpochMap<[u32; 3]>,
    /// Retained query positions (Lemma 2 list dropping).
    pub positions: Vec<usize>,
    /// Position sort buffer for the dropping heuristic.
    pub positions_tmp: Vec<usize>,
    /// `(id, distance)` hits of the F&V core (consumed by the coarse
    /// filter).
    pub hits: Vec<(RankingId, u32)>,
    /// `(partition, medoid distance)` pairs of the coarse filter phase.
    pub filtered: Vec<(u32, u32)>,
    /// Query items reordered by global frequency (AdaptSearch).
    pub qsorted: Vec<ItemId>,
    /// Item-sorted `(item, rank)` query pairs (coarse validation).
    pub qp: Vec<(ItemId, u32)>,
    /// BK-tree traversal stack (coarse validation).
    pub tree_stack: Vec<u32>,
    /// Query-item corpus frequencies, sorted ascending (cost-model
    /// planner input; grows to `k` once and is then reused).
    pub plan_freqs: Vec<u32>,
    /// The corpus-generation stamp of the engine this scratch last served
    /// (see [`QueryScratch::ensure_generation`]); 0 = never stamped.
    generation: u64,
}

impl QueryScratch {
    /// A fresh scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Generation-counter invalidation: engines stamp every query with
    /// their corpus generation (bumped on insert/remove/compact). On a
    /// stamp change the scratch drops all residual buffer *contents* —
    /// capacity is kept, so the cost is a handful of `clear()`s right
    /// after a mutation and zero in steady state. The epoch structures are
    /// self-invalidating per query already; this guards the plain `Vec`
    /// buffers against any stale cross-query reuse on a corpus that
    /// changed shape underneath them. Returns whether an invalidation
    /// happened.
    pub fn ensure_generation(&mut self, generation: u64) -> bool {
        if self.generation == generation {
            return false;
        }
        self.generation = generation;
        self.positions.clear();
        self.positions_tmp.clear();
        self.hits.clear();
        self.filtered.clear();
        self.qsorted.clear();
        self.qp.clear();
        self.tree_stack.clear();
        self.plan_freqs.clear();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footrule::PositionMap;

    #[test]
    fn epoch_map_basic_ops() {
        let mut m: EpochMap<u32> = EpochMap::new();
        m.begin(10);
        assert!(m.is_empty());
        m.insert(3, 7);
        *m.probe(5) += 2;
        *m.probe(5) += 1;
        assert_eq!(m.get(3), Some(7));
        assert_eq!(m.get(5), Some(3));
        assert_eq!(m.get(4), None);
        assert_eq!(m.keys(), &[3, 5]);
        m.begin(10);
        assert_eq!(m.get(3), None);
        assert!(m.is_empty());
    }

    #[test]
    fn epoch_map_retain_compacts_and_unstamps() {
        let mut m: EpochMap<u32> = EpochMap::new();
        m.begin(8);
        for k in [1u32, 4, 6, 7] {
            m.insert(k, k * 10);
        }
        m.retain(|k, v| {
            *v += 1;
            k % 2 == 0
        });
        assert_eq!(m.keys(), &[4, 6]);
        assert!(!m.contains(1));
        assert!(!m.contains(7));
        assert_eq!(m.get(4), Some(41));
        // A removed key can be re-inserted.
        m.insert(1, 99);
        assert_eq!(m.get(1), Some(99));
    }

    #[test]
    fn epoch_set_mark_dedups() {
        let mut s: EpochSet = EpochMap::new();
        s.begin(5);
        assert!(s.mark(2));
        assert!(!s.mark(2));
        assert!(s.mark(0));
        assert_eq!(s.keys(), &[2, 0]);
    }

    #[test]
    fn epoch_map_survives_universe_growth() {
        let mut m: EpochMap<u32> = EpochMap::new();
        m.begin(4);
        m.insert(3, 1);
        m.begin(16);
        assert_eq!(m.get(3), None);
        m.insert(15, 5);
        assert_eq!(m.get(15), Some(5));
    }

    #[test]
    fn flat_position_map_agrees_with_hash_map() {
        let q = [7u32, 1, 6, 5, 2].map(ItemId);
        let candidates = [
            [1u32, 4, 5, 9, 0].map(ItemId),
            [7u32, 1, 6, 5, 2].map(ItemId),
            [10u32, 11, 12, 13, 14].map(ItemId),
        ];
        let mut raw: Vec<u32> = q.iter().map(|i| i.0).collect();
        for c in &candidates {
            raw.extend(c.iter().map(|i| i.0));
        }
        let remap = ItemRemap::from_raw_ids(raw);
        let reference = PositionMap::new(&q);
        let mut flat = FlatPositionMap::new();
        flat.build(&remap, &q);
        for c in &candidates {
            assert_eq!(flat.distance_to(&remap, c), reference.distance_to(c));
            assert_eq!(flat.overlap(&remap, c), reference.overlap(c));
        }
    }

    #[test]
    fn flat_position_map_handles_out_of_corpus_query_items() {
        // Query items 100..105 are not in the remap; distance to corpus
        // candidates must still match the hash-map reference.
        let q = [100u32, 1, 102, 5, 104].map(ItemId);
        let c = [1u32, 4, 5, 9, 0].map(ItemId);
        let remap = ItemRemap::from_raw_ids(vec![0, 1, 4, 5, 9]);
        let mut flat = FlatPositionMap::new();
        flat.build(&remap, &q);
        assert_eq!(
            flat.distance_to(&remap, &c),
            PositionMap::new(&q).distance_to(&c)
        );
    }

    #[test]
    fn chunked_kernel_matches_scalar_on_mixed_overlap() {
        let q = [7u32, 1, 6, 5, 2, 9, 3, 0, 11, 12].map(ItemId);
        let candidates = [
            [1u32, 4, 5, 9, 0, 13, 14, 15, 16, 17].map(ItemId),
            [7u32, 1, 6, 5, 2, 9, 3, 0, 11, 12].map(ItemId),
            [20u32, 21, 22, 23, 24, 25, 26, 27, 28, 29].map(ItemId),
            [12u32, 11, 0, 3, 9, 2, 5, 6, 1, 7].map(ItemId),
        ];
        let mut raw: Vec<u32> = q.iter().map(|i| i.0).collect();
        for c in &candidates {
            raw.extend(c.iter().map(|i| i.0));
        }
        let remap = ItemRemap::from_raw_ids(raw);
        let mut flat = FlatPositionMap::new();
        flat.build(&remap, &q);
        for c in &candidates {
            let exact = flat.distance_to(&remap, c);
            assert_eq!(flat.distance_to_chunked(&remap, c), exact);
            // A full-range θ never prunes, so the pruned walk is exact.
            assert_eq!(
                flat.distance_within_chunked(&remap, c, u32::MAX),
                Some(exact)
            );
        }
    }

    #[test]
    fn distance_within_none_strictly_means_above_theta() {
        let q = [7u32, 1, 6, 5, 2, 9, 3, 0, 11, 12].map(ItemId);
        let candidates = [
            [1u32, 4, 5, 9, 0, 13, 14, 15, 16, 17].map(ItemId),
            [7u32, 1, 6, 5, 2, 9, 3, 0, 11, 12].map(ItemId),
            [20u32, 21, 22, 23, 24, 25, 26, 27, 28, 29].map(ItemId),
        ];
        let mut raw: Vec<u32> = q.iter().map(|i| i.0).collect();
        for c in &candidates {
            raw.extend(c.iter().map(|i| i.0));
        }
        let remap = ItemRemap::from_raw_ids(raw);
        let mut flat = FlatPositionMap::new();
        flat.build(&remap, &q);
        for c in &candidates {
            let exact = flat.distance_to(&remap, c);
            for theta in 0..=crate::footrule::max_distance(q.len()) {
                match flat.distance_within(&remap, c, theta, Kernel::Simd) {
                    Some(d) => assert_eq!(d, exact),
                    None => assert!(exact > theta, "pruned a candidate within θ"),
                }
                assert_eq!(
                    flat.distance_within(&remap, c, theta, Kernel::Scalar),
                    Some(exact)
                );
                // The membership verdict is kernel-independent.
                let simd_hit = flat
                    .distance_within(&remap, c, theta, Kernel::Simd)
                    .is_some_and(|d| d <= theta);
                assert_eq!(simd_hit, exact <= theta);
            }
        }
        // The disjoint candidate must actually trigger the early exit at
        // the paper's benchmark threshold.
        let theta = crate::footrule::raw_threshold(0.2, q.len());
        assert_eq!(
            flat.distance_within(&remap, &candidates[2], theta, Kernel::Simd),
            None
        );
    }

    #[test]
    fn flat_position_map_rebuild_invalidates_previous_query() {
        let remap = ItemRemap::from_raw_ids(vec![0, 1, 2, 3, 4, 5]);
        let mut flat = FlatPositionMap::new();
        flat.build(&remap, &[0u32, 1, 2].map(ItemId));
        assert_eq!(flat.rank_of(&remap, ItemId(2)), Some(2));
        flat.build(&remap, &[3u32, 4, 5].map(ItemId));
        assert_eq!(flat.rank_of(&remap, ItemId(2)), None);
        assert_eq!(flat.rank_of(&remap, ItemId(3)), Some(0));
    }
}
