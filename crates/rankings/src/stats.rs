//! Per-query instrumentation.
//!
//! The paper's Figure 10 compares algorithms by the number of **distance
//! function calls** (DFC) they perform; Table 6 and the Section 7 phase
//! breakdowns additionally need list-access and candidate counts. Every
//! query-processing routine in this workspace threads a `&mut QueryStats`
//! and bumps the relevant counters.

/// Counters accumulated while processing one query (or a batch; counters
/// are additive and [`QueryStats::merge`] folds batches together).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Full Footrule evaluations (the paper's DFC measure).
    pub distance_calls: u64,
    /// Inverted-index lists opened.
    pub lists_accessed: u64,
    /// Index-list entries scanned (postings read).
    pub entries_scanned: u64,
    /// Candidate rankings that reached the validation phase.
    pub candidates: u64,
    /// Metric-tree nodes visited (BK-/M-/VP-tree traversals).
    pub tree_nodes_visited: u64,
    /// Results reported.
    pub results: u64,
    /// Posting entries bypassed by suffix-bound-ordered window scans
    /// (entries an unordered scan would have read but an ordered list
    /// proved irrelevant without touching).
    pub postings_skipped: u64,
    /// Validations aborted early by the suffix-bound distance kernel
    /// (candidate proven outside θ before the walk finished).
    pub validations_pruned: u64,
}

impl QueryStats {
    /// Fresh, all-zero stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one Footrule evaluation.
    #[inline]
    pub fn count_distance(&mut self) {
        self.distance_calls += 1;
    }

    /// Records `n` Footrule evaluations.
    #[inline]
    pub fn count_distances(&mut self, n: u64) {
        self.distance_calls += n;
    }

    /// Records an opened index list of `len` postings.
    #[inline]
    pub fn count_list(&mut self, len: usize) {
        self.lists_accessed += 1;
        self.entries_scanned += len as u64;
    }

    /// Folds another stats record into this one.
    pub fn merge(&mut self, other: &QueryStats) {
        self.distance_calls += other.distance_calls;
        self.lists_accessed += other.lists_accessed;
        self.entries_scanned += other.entries_scanned;
        self.candidates += other.candidates;
        self.tree_nodes_visited += other.tree_nodes_visited;
        self.results += other.results;
        self.postings_skipped += other.postings_skipped;
        self.validations_pruned += other.validations_pruned;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters() {
        let mut a = QueryStats::new();
        a.count_distance();
        a.count_list(10);
        let mut b = QueryStats::new();
        b.count_distances(4);
        b.count_list(5);
        b.candidates = 3;
        b.postings_skipped = 7;
        b.validations_pruned = 2;
        a.merge(&b);
        assert_eq!(a.distance_calls, 5);
        assert_eq!(a.lists_accessed, 2);
        assert_eq!(a.entries_scanned, 15);
        assert_eq!(a.candidates, 3);
        assert_eq!(a.postings_skipped, 7);
        assert_eq!(a.validations_pruned, 2);
    }
}
