//! Property tests for the adapted Footrule distance: metric axioms,
//! parity, bounds, and agreement of the two evaluation paths.

use proptest::prelude::*;
use ranksim_rankings::{
    footrule_items, footrule_pairs, max_distance, min_distance_for_overlap, ItemId, PositionMap,
};

/// Strategy: a random ranking of size `k` over item domain `0..domain`.
fn ranking(k: usize, domain: u32) -> impl Strategy<Value = Vec<ItemId>> {
    proptest::sample::subsequence((0..domain).collect::<Vec<u32>>(), k)
        .prop_shuffle()
        .prop_map(|items| items.into_iter().map(ItemId).collect())
}

fn pairs_of(items: &[ItemId]) -> Vec<(ItemId, u32)> {
    let mut v: Vec<(ItemId, u32)> = items
        .iter()
        .enumerate()
        .map(|(r, &i)| (i, r as u32))
        .collect();
    v.sort_unstable();
    v
}

proptest! {
    #[test]
    fn footrule_is_symmetric(a in ranking(8, 40), b in ranking(8, 40)) {
        prop_assert_eq!(footrule_items(&a, &b), footrule_items(&b, &a));
    }

    #[test]
    fn footrule_identity_of_indiscernibles(a in ranking(8, 40), b in ranking(8, 40)) {
        let d = footrule_items(&a, &b);
        prop_assert_eq!(d == 0, a == b);
    }

    #[test]
    fn footrule_triangle_inequality(
        a in ranking(7, 30),
        b in ranking(7, 30),
        c in ranking(7, 30),
    ) {
        let ab = footrule_items(&a, &b);
        let bc = footrule_items(&b, &c);
        let ac = footrule_items(&a, &c);
        prop_assert!(ac <= ab + bc, "d(a,c)={ac} > d(a,b)+d(b,c)={}", ab + bc);
    }

    #[test]
    fn footrule_is_even_and_bounded(a in ranking(9, 50), b in ranking(9, 50)) {
        let d = footrule_items(&a, &b);
        prop_assert_eq!(d % 2, 0, "Footrule over top-k lists must be even");
        prop_assert!(d <= max_distance(9));
    }

    #[test]
    fn footrule_respects_overlap_lower_bound(a in ranking(8, 25), b in ranking(8, 25)) {
        let q = PositionMap::new(&a);
        let overlap = q.overlap(&b);
        let d = footrule_items(&a, &b);
        prop_assert!(
            d >= min_distance_for_overlap(8, overlap),
            "d={d} below L(k,ω)={} at ω={overlap}",
            min_distance_for_overlap(8, overlap)
        );
    }

    #[test]
    fn evaluation_paths_agree(a in ranking(10, 60), b in ranking(10, 60)) {
        let via_items = footrule_items(&a, &b);
        let via_pairs = footrule_pairs(&pairs_of(&a), &pairs_of(&b), 10);
        let via_map = PositionMap::new(&a).distance_to(&b);
        prop_assert_eq!(via_items, via_pairs);
        prop_assert_eq!(via_items, via_map);
    }

    #[test]
    fn kendall_footrule_diaconis_graham_on_permutations(
        perm in Just((0u32..8).collect::<Vec<_>>()).prop_shuffle()
    ) {
        // For permutations over the SAME domain: K ≤ F ≤ 2K.
        let identity: Vec<ItemId> = (0u32..8).map(ItemId).collect();
        let p: Vec<ItemId> = perm.into_iter().map(ItemId).collect();
        let f = footrule_items(&identity, &p);
        let k = ranksim_rankings::kendall::kendall_top_k(&identity, &p);
        prop_assert!(k <= f && f <= 2 * k || (k == 0 && f == 0));
    }
}
