//! Differential harness for the position-compare kernels: the chunked,
//! auto-vectorization-friendly [`Kernel::Simd`] walk against the
//! [`Kernel::Scalar`] reference loop, on adversarial inputs —
//!
//! * every length alignment around the [`KERNEL_CHUNK`] boundary
//!   (`k ∈ 1..=3·CHUNK+1`, covering exact multiples, ±1 and partial
//!   trailing chunks),
//! * overlaps from identical through partial (with rank displacements)
//!   to fully disjoint, including query items absent from the corpus,
//! * thresholds from 0 through the exact distance ±1 up to past the
//!   `k(k+1)` distance ceiling.
//!
//! The contract under test: the scalar kernel always returns the exact
//! distance; the SIMD kernel returns the identical exact distance
//! whenever the candidate is within θ (bit-identical result sets), and
//! `None` only when the suffix bound *proved* the candidate outside θ.

use proptest::prelude::*;
use ranksim_rankings::{
    kendall_top_k_with, one_side_total, FlatPositionMap, ItemId, ItemRemap, Kernel, Ranking,
    RankingStore, KERNEL_CHUNK,
};

/// The largest item domain any case uses (`2k + 2` at the top `k`).
const MAX_DOMAIN: u32 = 2 * (3 * KERNEL_CHUNK as u32 + 1) + 2;

/// A random permutation of the full `0..MAX_DOMAIN` domain; [`take_k`]
/// derives a size-`k` ranking over the per-case domain from it.
fn perm() -> impl Strategy<Value = Vec<u32>> {
    proptest::sample::subsequence((0..MAX_DOMAIN).collect::<Vec<u32>>(), MAX_DOMAIN as usize)
        .prop_shuffle()
}

/// First `k` entries of `perm` that fall inside the tight per-case
/// domain `0..2k + 2` — a uniformly random size-`k` ranking over it. The
/// tight domain forces heavy overlap and rank ties while still
/// admitting near-disjoint pairs.
fn take_k(perm: &[u32], k: usize) -> Vec<u32> {
    perm.iter()
        .copied()
        .filter(|&v| v < 2 * k as u32 + 2)
        .take(k)
        .collect()
}

fn store_of(k: usize, rankings: &[Vec<u32>]) -> RankingStore {
    let mut store = RankingStore::new(k);
    for r in rankings {
        store
            .push(&Ranking::new(r.iter().copied()).unwrap())
            .unwrap();
    }
    store
}

fn items(raw: &[u32]) -> Vec<ItemId> {
    raw.iter().copied().map(ItemId).collect()
}

/// Asserts the full `distance_within` contract for one (query map,
/// candidate, θ) cell against the known exact distance.
fn assert_kernel_contract(
    map: &FlatPositionMap,
    remap: &ItemRemap,
    candidate: &[ItemId],
    theta: u32,
    exact: u32,
) {
    assert_eq!(
        map.distance_within(remap, candidate, theta, Kernel::Scalar),
        Some(exact),
        "scalar kernel must always return the exact distance"
    );
    match map.distance_within(remap, candidate, theta, Kernel::Simd) {
        Some(d) => assert_eq!(d, exact, "SIMD kernel returned a wrong distance"),
        None => assert!(
            exact > theta,
            "SIMD kernel pruned a candidate within θ (exact {exact} ≤ θ {theta})"
        ),
    }
    if exact <= theta {
        assert_eq!(
            map.distance_within(remap, candidate, theta, Kernel::Simd),
            Some(exact),
            "a within-θ candidate must never be pruned"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random lengths, alignments and overlaps: both kernels agree with
    /// the exact distance, `None` only on proven misses.
    #[test]
    fn simd_kernel_matches_scalar_oracle(
        k in 1usize..=3 * KERNEL_CHUNK + 1,
        query_perm in perm(),
        candidate_perms in proptest::collection::vec(perm(), 1..6),
        theta in 0u32..200,
    ) {
        let query = take_k(&query_perm, k);
        let candidates: Vec<Vec<u32>> =
            candidate_perms.iter().map(|p| take_k(p, k)).collect();
        let store = store_of(k, &candidates);
        let remap = ItemRemap::build(&store);
        let q = items(&query);
        let mut map = FlatPositionMap::new();
        map.build(&remap, &q);
        for id in store.ids() {
            let cand = store.items(id);
            let exact = map.distance_to(&remap, cand);
            prop_assert_eq!(map.distance_to_chunked(&remap, cand), exact);
            assert_kernel_contract(&map, &remap, cand, theta, exact);
        }
    }

    /// The Kendall kernels must agree everywhere too.
    #[test]
    fn kendall_kernels_agree(
        k in 1usize..=3 * KERNEL_CHUNK + 1,
        query_perm in perm(),
        candidate_perms in proptest::collection::vec(perm(), 1..6),
    ) {
        let q = items(&take_k(&query_perm, k));
        for c in &candidate_perms {
            let c = items(&take_k(c, k));
            prop_assert_eq!(
                kendall_top_k_with(&q, &c, Kernel::Scalar),
                kendall_top_k_with(&q, &c, Kernel::Simd)
            );
        }
    }
}

/// Deterministic sweep of the extremes at every chunk alignment:
/// identical (distance 0) and fully disjoint (distance `k(k+1)`)
/// candidates, thresholds pinned around the exact distance and at both
/// ends of the range — including `u32::MAX`, which must not overflow
/// the kernel's clamped i32 arithmetic.
#[test]
fn chunk_alignment_extremes_honor_the_contract() {
    for k in 1..=3 * KERNEL_CHUNK + 1 {
        let identical: Vec<u32> = (0..k as u32).collect();
        let disjoint: Vec<u32> = (k as u32..2 * k as u32).collect();
        let reversed: Vec<u32> = (0..k as u32).rev().collect();
        let store = store_of(k, &[identical.clone(), disjoint, reversed]);
        let remap = ItemRemap::build(&store);
        let q = items(&identical);
        let mut map = FlatPositionMap::new();
        map.build(&remap, &q);
        let ceiling = 2 * one_side_total(k) as u32; // k(k+1)
        for id in store.ids() {
            let cand = store.items(id);
            let exact = map.distance_to(&remap, cand);
            assert!(exact <= ceiling, "k={k}: distance above the ceiling");
            for theta in [
                0,
                exact.saturating_sub(1),
                exact,
                exact + 1,
                ceiling,
                u32::MAX,
            ] {
                assert_kernel_contract(&map, &remap, cand, theta, exact);
            }
        }
    }
}
