//! Batch similarity search — the paper's Section 8 outlook, applied to a
//! preference-matching workload.
//!
//! A dating-portal-style service receives bursts of "find users with
//! similar favorite lists" queries. Many concurrent queries are near-
//! duplicates of each other; the batch processor clusters them and probes
//! the coarse index once per cluster leader instead of once per query.
//!
//! ```sh
//! cargo run --release --example batch_dedup
//! ```

use std::time::Instant;

use ranksim::core::batch::{batch_query, QueryBatch};
use ranksim::core::CoarseIndex;
use ranksim::datasets::{nyt_like, workload, WorkloadParams};
use ranksim::prelude::*;

fn main() {
    let k = 10;
    let ds = nyt_like(15_000, k, 99);
    let index = CoarseIndex::build(&ds.store, raw_threshold(0.4, k));
    println!(
        "coarse index: {} partitions over {} rankings",
        index.num_partitions(),
        ds.store.len()
    );

    // A bursty batch: 400 queries drawn from a handful of hot rankings.
    let wl = workload(
        &ds.store,
        ds.params.domain,
        WorkloadParams {
            num_queries: 400,
            max_swaps: 1,
            replace_prob: 0.15,
            seed: 1,
        },
    );
    let theta = raw_threshold(0.2, k);

    // Individual processing.
    let mut solo_stats = QueryStats::new();
    let t = Instant::now();
    let solo: Vec<Vec<RankingId>> = wl
        .queries
        .iter()
        .map(|q| index.query(&ds.store, q, theta, false, &mut solo_stats))
        .collect();
    let solo_time = t.elapsed();

    // Batched processing at clustering radius ρ = 0.1·d_max.
    let rho = raw_threshold(0.1, k);
    let batch = QueryBatch {
        queries: &wl.queries,
        theta_raw: theta,
    };
    let mut batch_stats = QueryStats::new();
    let t = Instant::now();
    let batched = batch_query(&index, &ds.store, &batch, rho, &mut batch_stats);
    let batch_time = t.elapsed();

    // Same answers, fewer index probes.
    for (a, b) in solo.iter().zip(&batched) {
        let mut a = a.clone();
        let mut b = b.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "batched processing must be exact");
    }
    println!(
        "individual: {solo_time:>9.1?}  (postings scanned: {})",
        solo_stats.entries_scanned
    );
    println!(
        "batched:    {batch_time:>9.1?}  (postings scanned: {})",
        batch_stats.entries_scanned
    );
    println!(
        "index-list accesses: {} -> {}",
        solo_stats.lists_accessed, batch_stats.lists_accessed
    );
}
