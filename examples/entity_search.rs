//! Entity-ranking search over a Yago-like knowledge-base corpus — the
//! paper's second evaluation scenario.
//!
//! Rankings are "top-10 buildings in New York by height"-style entity
//! lists mined from a knowledge base: a large, nearly uniform item domain
//! where every entity occurs in few rankings. This example runs the full
//! algorithm suite and prints a Figure 9-style comparison, illustrating
//! the paper's finding that the margins between the techniques shrink on
//! uniform data and simple ListMerge becomes competitive.
//!
//! ```sh
//! cargo run --release --example entity_search
//! ```

use std::time::Instant;

use ranksim::datasets::{workload, yago_like, WorkloadParams};
use ranksim::prelude::*;

fn main() {
    let n = 25_000; // the original Yago corpus size
    let k = 10;
    println!("generating Yago-like corpus (n = {n}, k = {k}) ...");
    let ds = yago_like(n, k, 7);
    let domain = ds.params.domain;

    let engine = EngineBuilder::new(ds.store)
        .coarse_threshold(0.5)
        .coarse_drop_threshold(0.06)
        .build();

    let wl = workload(
        engine.store(),
        domain,
        WorkloadParams {
            num_queries: 300,
            ..Default::default()
        },
    );

    println!(
        "{} partitions over {} rankings\n",
        engine.coarse_index().num_partitions(),
        engine.store().len()
    );
    println!(
        "{:<20} {:>10} {:>12} {:>12}",
        "algorithm", "time", "DFC", "avg hits"
    );
    for theta in [0.1, 0.3] {
        println!("-- θ = {theta} --");
        for alg in Algorithm::ALL {
            let mut stats = QueryStats::new();
            let mut scratch = engine.scratch();
            let t = Instant::now();
            let mut hits = 0usize;
            for q in &wl.queries {
                hits += engine
                    .query_items(alg, q, raw_threshold(theta, k), &mut scratch, &mut stats)
                    .len();
            }
            println!(
                "{:<20} {:>10.1?} {:>12} {:>12.2}",
                alg.name(),
                t.elapsed(),
                stats.distance_calls,
                hits as f64 / wl.len() as f64
            );
        }
    }
}
