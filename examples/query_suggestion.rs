//! Web-search query suggestion over result-list similarity — the paper's
//! introductory NYT scenario.
//!
//! A search engine keeps the top-10 result lists of historic queries.
//! Given the result list of the *current* query, suggesting related
//! historic queries reduces to top-k-list similarity search. This example
//! builds an NYT-like corpus (skewed document popularity, many
//! near-duplicate result lists), lets the cost model pick the coarse
//! index's sweet spot θ_C, and compares against the plain inverted index.
//!
//! ```sh
//! cargo run --release --example query_suggestion
//! ```

use std::time::Instant;

use ranksim::core::{CalibratedCosts, CostModel};
use ranksim::datasets::{nyt_like, workload, WorkloadParams};
use ranksim::prelude::*;

fn main() {
    let n = 20_000;
    let k = 10;
    println!("generating NYT-like corpus (n = {n}, k = {k}) ...");
    let ds = nyt_like(n, k, 42);

    // --- Cost-model-driven tuning ------------------------------------
    println!("calibrating machine costs and fitting the cost model ...");
    let costs = CalibratedCosts::measure(k);
    let model = CostModel::from_store(&ds.store, 50_000, 7, costs);
    let theta = 0.2;
    let theta_c = model.optimal_theta_c_normalized(theta);
    println!(
        "estimated Zipf skew s = {:.2}; model-chosen θ_C = {:.2} for θ = {theta}",
        model.zipf_s(),
        theta_c
    );

    // --- Build and compare -------------------------------------------
    let domain = ds.params.domain;
    let t0 = Instant::now();
    let engine = EngineBuilder::new(ds.store)
        .coarse_threshold(theta_c)
        .build();
    println!("built all indexes in {:.1?}", t0.elapsed());
    println!(
        "coarse index: {} partitions for {} rankings\n",
        engine.coarse_index().num_partitions(),
        engine.store().len()
    );

    let wl = workload(
        engine.store(),
        domain,
        WorkloadParams {
            num_queries: 200,
            ..Default::default()
        },
    );

    for alg in [Algorithm::Fv, Algorithm::Coarse, Algorithm::CoarseDrop] {
        let mut stats = QueryStats::new();
        let mut scratch = engine.scratch();
        let t = Instant::now();
        let mut total_hits = 0usize;
        for q in &wl.queries {
            total_hits += engine
                .query_items(alg, q, raw_threshold(theta, k), &mut scratch, &mut stats)
                .len();
        }
        println!(
            "{:<12} {:>8.1?} for {} queries | avg results {:5.1} | DFC {:>9}",
            alg.name(),
            t.elapsed(),
            wl.len(),
            total_hits as f64 / wl.len() as f64,
            stats.distance_calls,
        );
    }

    println!(
        "\nThe coarse index answers the same queries with a fraction of the \
         distance computations: near-duplicate historic result lists are \
         validated wholesale through their BK-subtrees."
    );
}
