//! Quickstart: index a handful of top-k rankings and run ad-hoc
//! similarity queries with every algorithm.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ranksim::prelude::*;

fn main() {
    // A corpus of top-5 "favorite movies" rankings (items are movie ids).
    let corpus: Vec<[u32; 5]> = vec![
        [1, 2, 3, 4, 5],
        [1, 2, 9, 8, 3],
        [9, 8, 1, 2, 4],
        [7, 1, 9, 4, 5],
        [6, 1, 5, 2, 3],
        [4, 5, 1, 2, 3],
        [1, 6, 2, 3, 7],
        [7, 1, 6, 5, 2],
        [2, 5, 9, 8, 1],
        [6, 3, 2, 1, 4],
    ];
    let mut store = RankingStore::new(5);
    for items in &corpus {
        store
            .push(&Ranking::new(items.iter().copied()).expect("valid ranking"))
            .expect("size matches store");
    }

    // Build all indexes. θ_C controls how aggressively near-duplicate
    // rankings are collapsed behind one medoid.
    let engine = EngineBuilder::new(store).coarse_threshold(0.3).build();

    // "Find all users whose taste is within normalized Footrule 0.4 of
    // this query list."
    let query = Ranking::new([7u32, 6, 3, 9, 5]).unwrap();
    println!("query: {:?}, θ = 0.4\n", query.items());

    for alg in Algorithm::ALL {
        let mut stats = QueryStats::new();
        let mut hits = engine.query(alg, &query, 0.4, &mut stats);
        hits.sort_unstable();
        println!(
            "{:<20} -> {:?}  (distance calls: {}, postings scanned: {})",
            alg.name(),
            hits.iter().map(|h| h.0).collect::<Vec<_>>(),
            stats.distance_calls,
            stats.entries_scanned,
        );
    }

    // Every algorithm returns the same result set; they differ in the
    // work they spend. On real corpora (see the other examples) the gaps
    // span orders of magnitude.
}
