//! # ranksim — top-k-list similarity search
//!
//! A faithful, production-grade Rust implementation of
//! *"The Sweet Spot between Inverted Indices and Metric-Space Indexing for
//! Top-K-List Similarity Search"* (Milchevski, Anand & Michel, EDBT 2015).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`rankings`] — the top-k ranking model and Footrule/Kendall distances,
//! * [`metricspace`] — BK-tree, M-tree, VP-tree and fixed-radius
//!   partitioning,
//! * [`invindex`] — the inverted-index algorithm family (F&V, ListMerge,
//!   +Drop, Blocked+Prune, Minimal F&V),
//! * [`adaptsearch`] — the AdaptSearch competitor,
//! * [`datasets`] — synthetic NYT-like / Yago-like corpora and workloads,
//! * [`core`] — the paper's contribution: the coarse hybrid index, its
//!   cost model and the sweet-spot tuner, plus the unified query [`prelude::Engine`].
//!
//! ## Quickstart
//!
//! ```
//! use ranksim::prelude::*;
//!
//! // Build a tiny corpus of top-4 rankings.
//! let mut store = RankingStore::new(4);
//! for items in [[2u32, 5, 4, 3], [1, 4, 5, 9], [0, 8, 5, 7], [2, 5, 4, 9]] {
//!     store.push(&Ranking::new(items).unwrap()).unwrap();
//! }
//!
//! // Index it with the coarse hybrid index at θ_C = 0.3.
//! let engine = EngineBuilder::new(store)
//!     .coarse_threshold(0.3)
//!     .build();
//!
//! // Ad-hoc similarity query: everything within normalized Footrule 0.35.
//! let query = Ranking::new([2u32, 5, 4, 7]).unwrap();
//! let mut stats = QueryStats::new();
//! let hits = engine.query(Algorithm::Coarse, &query, 0.35, &mut stats);
//! assert!(hits.contains(&RankingId(0)));
//! ```
//!
//! ## Live corpora
//!
//! The engine is mutable: insert and remove rankings at any time, with
//! every algorithm (and the sharded engine) answering exactly as a
//! freshly built index would — removals tombstone lazily, inserts live
//! in a linearly-validated delta overlay, and
//! [`prelude::Engine::compact`] folds both into fresh arenas.
//!
//! ```
//! use ranksim::prelude::*;
//!
//! let mut store = RankingStore::new(4);
//! for items in [[2u32, 5, 4, 3], [1, 4, 5, 9], [0, 8, 5, 7]] {
//!     store.push(&Ranking::new(items).unwrap()).unwrap();
//! }
//! let mut engine = EngineBuilder::new(store).coarse_threshold(0.3).build();
//!
//! let fresh = engine.insert_ranking(&[2u32, 5, 4, 9].map(ItemId));
//! engine.remove_ranking(RankingId(1));
//! let mut stats = QueryStats::new();
//! let query = Ranking::new([2u32, 5, 4, 7]).unwrap();
//! let hits = engine.query(Algorithm::Fv, &query, 0.35, &mut stats);
//! assert!(hits.contains(&fresh) && !hits.contains(&RankingId(1)));
//!
//! engine.compact(); // rebuild arenas over the live corpus, in place
//! let hits = engine.query(Algorithm::Coarse, &query, 0.35, &mut stats);
//! assert!(hits.contains(&fresh));
//! ```
//!
//! ## Concurrent serving
//!
//! [`prelude::SnapshotEngine`] wraps an engine in an RCU-style snapshot
//! layer for mixed read/write workloads: mutations go through `&self`
//! and are published off-thread, while readers grab a frozen
//! [`prelude::EngineSnapshot`] and never block on a writer — not even
//! during a compaction rebuild.
//!
//! ```
//! use ranksim::prelude::*;
//!
//! let mut store = RankingStore::new(4);
//! for items in [[2u32, 5, 4, 3], [1, 4, 5, 9], [0, 8, 5, 7]] {
//!     store.push(&Ranking::new(items).unwrap()).unwrap();
//! }
//! let service = SnapshotEngine::new(EngineBuilder::new(store).coarse_threshold(0.3).build());
//!
//! let snap = service.snapshot(); // frozen world, zero-allocation acquire
//! let fresh = service.insert_ranking(&[2u32, 5, 4, 9].map(ItemId));
//! service.flush(); // wait for the publisher to catch up
//!
//! let mut stats = QueryStats::new();
//! let mut scratch = snap.scratch();
//! let q: Vec<ItemId> = [2u32, 5, 4, 7].map(ItemId).to_vec();
//! let theta = raw_threshold(0.35, 4);
//! // The held snapshot predates the insert; a fresh one sees it.
//! assert!(!snap.query_items(Algorithm::Fv, &q, theta, &mut scratch, &mut stats).contains(&fresh));
//! let now = service.snapshot();
//! assert!(now.query_items(Algorithm::Fv, &q, theta, &mut scratch, &mut stats).contains(&fresh));
//! ```

pub use ranksim_adaptsearch as adaptsearch;
pub use ranksim_core as core;
pub use ranksim_datasets as datasets;
pub use ranksim_invindex as invindex;
pub use ranksim_metricspace as metricspace;
pub use ranksim_rankings as rankings;

/// Everything a typical application needs, one `use` away.
pub mod prelude {
    pub use ranksim_core::engine::{Algorithm, Engine, EngineBuilder, QueryTrace};
    pub use ranksim_core::{
        load_engine, load_sharded, load_sharded_manifest, save_engine, save_sharded,
        serve_from_env, shard_snapshot_file, CalibratedCosts, CoarseIndex, CostModel,
        EngineSnapshot, Health, LoadMode, MutationError, PersistError, PlanStats, Planner,
        RebalanceConfig, RecoveryReport, RemoteError, RemoteOptions, RemoteShardedEngine,
        RemoteStats, ShardStrategy, ShardedEngine, ShardedEngineBuilder, ShardedManifest,
        SnapshotEngine, SnapshotMeta, SyncPolicy, WorkerReport, WorkerSpec,
    };
    pub use ranksim_invindex::PostingOrder;
    pub use ranksim_rankings::{
        footrule_pairs, raw_threshold, ExecStats, ItemId, ItemRemap, Kernel, PositionMap,
        QueryExecutor, QueryScratch, QueryStats, Ranking, RankingId, RankingStore,
    };
}
