//! Cross-crate integration: every algorithm of the paper's evaluation —
//! plus the metric trees and the Minimal F&V oracle — must return exactly
//! the brute-force result set on both dataset families, across ranking
//! sizes and thresholds.

use ranksim::datasets::{nyt_like, workload, yago_like, Dataset, WorkloadParams};
use ranksim::invindex::MinimalFv;
use ranksim::metricspace::{linear_scan, query_pairs, BkTree, MTree, VpTree};
use ranksim::prelude::*;

fn check_dataset(ds: Dataset, k: usize) {
    let domain = ds.params.domain;
    let engine = EngineBuilder::new(ds.store)
        .coarse_threshold(0.5)
        .coarse_drop_threshold(0.06)
        .build();
    let store = engine.store();
    let bk = BkTree::build(store);
    let mtree = MTree::build(store);
    let vp = VpTree::build(store, 3);

    let wl = workload(
        store,
        domain,
        WorkloadParams {
            num_queries: 8,
            seed: 2024,
            ..Default::default()
        },
    );
    let thetas = [0.0, 0.1, 0.2, 0.3];
    // Minimal F&V materializes (query, θ) pairs.
    let oracle_workload: Vec<(Vec<ItemId>, u32)> = wl
        .queries
        .iter()
        .flat_map(|q| thetas.iter().map(|&t| (q.clone(), raw_threshold(t, k))))
        .collect();
    let oracle = MinimalFv::build(store, &oracle_workload);

    let mut scratch = engine.scratch();
    for (qi, q) in wl.queries.iter().enumerate() {
        let qp = query_pairs(q);
        for (ti, &theta) in thetas.iter().enumerate() {
            let raw = raw_threshold(theta, k);
            let mut stats = QueryStats::new();
            let mut expect = linear_scan(store, &qp, raw, &mut stats);
            expect.sort_unstable();

            for alg in Algorithm::ALL {
                let mut stats = QueryStats::new();
                let mut got = engine.query_items(alg, q, raw, &mut scratch, &mut stats);
                got.sort_unstable();
                assert_eq!(got, expect, "{alg} at θ={theta} (query {qi})");
            }
            for (name, got) in [
                ("BK-tree", bk.range_query(store, &qp, raw, &mut stats)),
                ("M-tree", mtree.range_query(store, &qp, raw, &mut stats)),
                ("VP-tree", vp.range_query(store, &qp, raw, &mut stats)),
                (
                    "Minimal F&V",
                    oracle.query(store, qi * thetas.len() + ti, q, raw, &mut stats),
                ),
            ] {
                let mut got = got;
                got.sort_unstable();
                assert_eq!(got, expect, "{name} at θ={theta} (query {qi})");
            }
        }
    }
}

#[test]
fn nyt_like_k10_all_agree() {
    check_dataset(nyt_like(1200, 10, 77), 10);
}

#[test]
fn nyt_like_k20_all_agree() {
    check_dataset(nyt_like(800, 20, 78), 20);
}

#[test]
fn yago_like_k10_all_agree() {
    check_dataset(yago_like(1200, 10, 79), 10);
}

#[test]
fn small_k_edge_case_all_agree() {
    check_dataset(nyt_like(600, 5, 80), 5);
}
