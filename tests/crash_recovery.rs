//! Crash-kill durability harness: a child process churns mutations
//! through a WAL-backed [`SnapshotEngine`] until it is SIGKILLed at a
//! random instant — mid-append, mid-sync, wherever the timer lands.
//! The parent then recovers from the surviving log and differentially
//! checks the result against a from-scratch oracle.
//!
//! The contract under test is exactly the paper-engine's durability
//! story ([`SnapshotEngine::recover`]): with `SyncPolicy::PerOp` every
//! acknowledged mutation is on disk, so after a kill the WAL holds a
//! **prefix** of the op stream plus at most one torn record. Both
//! sides derive the op stream deterministically from the same seed, so
//! the parent can rebuild the model state at the recovered prefix and
//! demand the recovered corpus be identical — ranking by ranking, hole
//! by hole — and that every algorithm answers like a fresh build.
//!
//! The child re-enters this very test binary (`crash_child` below,
//! dormant without its env vars), the standard self-exec trick for
//! fault harnesses.

use std::env;
use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::Rng;
use ranksim::core::read_wal;
use ranksim::prelude::*;

const K: usize = 8;
const DOMAIN: u32 = 48;
const INITIAL: usize = 60;

/// `model[id] = Some(items)` iff ranking `id` is live.
type Model = Vec<Option<Vec<ItemId>>>;

enum Op {
    Insert(Vec<ItemId>),
    Remove(RankingId),
    Compact,
}

fn random_ranking(rng: &mut StdRng) -> Vec<ItemId> {
    let mut items = Vec::with_capacity(K);
    while items.len() < K {
        let cand = ItemId(rng.random_range(0..DOMAIN));
        if !items.contains(&cand) {
            items.push(cand);
        }
    }
    items
}

/// The next op of the seed-derived stream, mirrored into `model`.
/// Child and parent drive the identical `StdRng`, so the stream —
/// including remove victims, which depend on the evolving live set —
/// is bit-identical on both sides.
fn next_op(rng: &mut StdRng, model: &mut Model) -> Op {
    let live: Vec<u32> = (0..model.len() as u32)
        .filter(|&i| model[i as usize].is_some())
        .collect();
    let roll = rng.random_range(0..100u32);
    if roll < 6 && !live.is_empty() {
        Op::Compact
    } else if roll < 55 || live.len() < 8 {
        let items = random_ranking(rng);
        model.push(Some(items.clone()));
        Op::Insert(items)
    } else {
        let victim = live[rng.random_range(0..live.len())];
        model[victim as usize] = None;
        Op::Remove(RankingId(victim))
    }
}

/// Seed → (base corpus model, op rng), identically on both sides.
fn seeded_base(seed: u64) -> (Model, StdRng) {
    let mut rng = proptest::rng_from_seed(seed);
    let model: Model = (0..INITIAL)
        .map(|_| Some(random_ranking(&mut rng)))
        .collect();
    (model, rng)
}

/// A fresh engine over the model at the original ids, holes preserved.
fn build_engine(model: &Model) -> Engine {
    let mut store = RankingStore::new(K);
    for slot in model {
        match slot {
            Some(items) => {
                store.push_items_unchecked(items);
            }
            None => {
                store.push_hole();
            }
        }
    }
    EngineBuilder::new(store)
        .coarse_threshold(0.4)
        .coarse_drop_threshold(0.06)
        .calibrated_costs(CalibratedCosts::nominal(K))
        .topk_tree(true)
        .build()
}

fn wal_path(seed: u64) -> PathBuf {
    env::temp_dir().join(format!("ranksim-crash-{seed:016x}.wal"))
}

fn ready_path(seed: u64) -> PathBuf {
    env::temp_dir().join(format!("ranksim-crash-{seed:016x}.ready"))
}

/// The child body: dormant unless spawned by the parent below. Churns
/// seed-derived ops through a `PerOp`-synced WAL forever; the parent's
/// SIGKILL is the only way out.
#[test]
fn crash_child() {
    let Ok(seed) = env::var("RANKSIM_CRASH_SEED") else {
        return;
    };
    let seed: u64 = seed.parse().expect("RANKSIM_CRASH_SEED is a u64");
    let (mut model, mut rng) = seeded_base(seed);
    let service =
        SnapshotEngine::with_wal(build_engine(&model), &wal_path(seed), SyncPolicy::PerOp)
            .expect("create child WAL");
    // Tell the parent the WAL header is on disk and churn has begun.
    std::fs::write(ready_path(seed), b"ready").expect("write ready marker");
    loop {
        match next_op(&mut rng, &mut model) {
            Op::Insert(items) => {
                service.insert_ranking(&items);
            }
            Op::Remove(id) => {
                assert!(service.remove_ranking(id), "removes target live ids");
            }
            Op::Compact => service.compact(),
        }
    }
}

/// Recovered corpus == model corpus, ranking by ranking, and every
/// algorithm answers like a fresh build over that model.
fn assert_recovered_matches(snap: &EngineSnapshot, model: &Model, seed: u64) {
    let oracle = build_engine(model);
    assert_eq!(
        snap.live_len(),
        oracle.live_len(),
        "live count after recovery"
    );
    let store = snap.store();
    assert_eq!(store.len(), model.len(), "corpus length after recovery");
    for (i, slot) in model.iter().enumerate() {
        let id = RankingId(i as u32);
        match slot {
            Some(items) => {
                assert!(store.is_live(id), "ranking {i} must be live");
                assert_eq!(store.items(id), &items[..], "ranking {i} contents");
            }
            None => assert!(!store.is_live(id), "ranking {i} must be a hole"),
        }
    }

    let mut qrng = proptest::rng_from_seed(seed ^ 0x5EED);
    let queries: Vec<Vec<ItemId>> = (0..3).map(|_| random_ranking(&mut qrng)).collect();
    let mut oscratch = oracle.scratch();
    let mut sscratch = snap.scratch();
    let mut stats = QueryStats::new();
    for q in &queries {
        for theta in [0.0, 0.15, 0.35] {
            let raw = raw_threshold(theta, K);
            let mut expect = oracle.query_items(Algorithm::Fv, q, raw, &mut oscratch, &mut stats);
            expect.sort_unstable();
            for alg in Algorithm::ALL.iter().copied().chain([Algorithm::Auto]) {
                let mut got = snap.query_items(alg, q, raw, &mut sscratch, &mut stats);
                got.sort_unstable();
                assert_eq!(got, expect, "{alg} diverged from the oracle at θ={theta}");
            }
        }
        let expect = oracle.query_topk(q, 7, &mut oscratch, &mut stats);
        let got = snap.query_topk(q, 7, &mut sscratch, &mut stats);
        assert_eq!(got, expect, "top-k diverged from the oracle");
    }
}

#[test]
fn sigkilled_writer_recovers_to_the_exact_surviving_prefix() {
    // The dormant-child guard: never recurse when *we* are the child.
    if env::var("RANKSIM_CRASH_SEED").is_ok() {
        return;
    }
    let exe = env::current_exe().expect("own test binary");
    let mut master = proptest::test_rng("crash_recovery::sigkill");
    let mut total_applied = 0u64;

    for round in 0..3u32 {
        let seed = proptest::case_seed(&mut master);
        let wal = wal_path(seed);
        let ready = ready_path(seed);
        let _ = std::fs::remove_file(&wal);
        let _ = std::fs::remove_file(&ready);

        let mut child = Command::new(&exe)
            .args(["crash_child", "--exact", "--nocapture"])
            .env("RANKSIM_CRASH_SEED", seed.to_string())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn crash child");

        // Wait for the WAL header, then let the churn run for a
        // seed-random 2–30 ms before pulling the plug.
        let deadline = Instant::now() + Duration::from_secs(20);
        while !ready.exists() {
            assert!(
                Instant::now() < deadline,
                "round {round}: child never became ready"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(2 + seed % 29));
        child.kill().expect("SIGKILL the child");
        child.wait().expect("reap the child");

        // Recover against the same seeded base corpus.
        let (model0, rng0) = seeded_base(seed);
        let (service, report) =
            SnapshotEngine::recover(build_engine(&model0), &wal, SyncPolicy::PerOp)
                .expect("recovery after SIGKILL");
        total_applied += report.applied;

        // A kill can tear at most the one record being written.
        let max_record = 8 + (4 + 4 + K * 4) as u64;
        assert!(
            report.truncated_bytes <= max_record,
            "round {round}: torn tail of {} bytes exceeds one record",
            report.truncated_bytes
        );

        // Replay the deterministic op stream to the recovered prefix.
        let mut model = model0;
        let mut rng = rng0;
        for _ in 0..report.applied {
            next_op(&mut rng, &mut model);
        }
        assert_recovered_matches(&service.snapshot(), &model, seed);

        // The recovered engine keeps serving *and* stays durable: one
        // more acknowledged insert must land in the resumed WAL.
        let fresh = random_ranking(&mut rng);
        service
            .try_insert_ranking(&fresh)
            .expect("recovered engine accepts writes");
        assert!(service.flush(), "publisher alive after recovery");
        assert!(service.health().is_healthy(), "healthy after recovery");
        drop(service); // joins the publisher, syncs the WAL

        let scan = read_wal(&wal).expect("re-scan the resumed WAL");
        assert_eq!(
            scan.ops.len() as u64,
            report.applied + 1,
            "round {round}: post-recovery insert is durable"
        );
        assert_eq!(scan.truncated_bytes, 0, "resume truncated the torn tail");

        let _ = std::fs::remove_file(&wal);
        let _ = std::fs::remove_file(&ready);
    }

    assert!(
        total_applied > 0,
        "no round survived any acknowledged op — the harness never exercised recovery"
    );
}
