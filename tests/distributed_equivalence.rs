//! Differential harness for the distributed tier: a
//! [`RemoteShardedEngine`] fanning queries over snapshot-spawned
//! worker processes must be **bit-identical** to the in-process
//! [`ShardedEngine`] it was saved from and to a monolithic [`Engine`]
//! over the same corpus — threshold queries across every algorithm
//! plus `Auto`, and lexicographic top-k.
//!
//! The shard workers are real OS processes: each test re-enters this
//! very test binary (`remote_worker` below, dormant without the
//! router-set env vars) — the same self-exec trick as the crash
//! harness. On top of plain equivalence the harness proves the two
//! distributed-only behaviours:
//!
//! - **pruned fan-out stays exact**: clustered corpora under medoid
//!   sharding let the pivot/radius bound skip most shards at tight θ,
//!   and the answers still match the oracle bit for bit;
//! - **worker death is survivable**: a worker SIGKILLed mid-batch is
//!   detected (EOF), respawned from its snapshot, and the batch
//!   finishes with every surviving answer identical to the oracle.

use std::env;
use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::Rng;
use ranksim::prelude::*;

const K: usize = 6;
/// Item-disjoint clusters: cluster `c` draws from `c*SPREAD..(c+1)*SPREAD`.
/// `SPREAD` barely exceeds `K`, so same-cluster rankings share most
/// items (small covering radius) while cross-cluster rankings are
/// fully disjoint (maximal pivot distance) — exactly the geometry the
/// pivot/radius bound prunes on.
const CLUSTERS: u32 = 4;
const SPREAD: u32 = 8;

/// The worker body: dormant unless spawned by a router in this file
/// (the env vars are only ever set on spawned children). Serves one
/// shard until the router disconnects.
#[test]
fn remote_worker() {
    let served = serve_from_env().expect("worker serves its shard cleanly");
    let _ = served;
}

fn worker_spec() -> WorkerSpec {
    let exe = env::current_exe().expect("own test binary");
    WorkerSpec::new(exe)
        .arg("remote_worker")
        .arg("--exact")
        .arg("--nocapture")
}

fn clustered_ranking(rng: &mut StdRng, cluster: u32) -> Vec<ItemId> {
    let base = cluster * SPREAD;
    let mut items = Vec::with_capacity(K);
    while items.len() < K {
        let cand = ItemId(base + rng.random_range(0..SPREAD));
        if !items.contains(&cand) {
            items.push(cand);
        }
    }
    items
}

/// A clustered corpus whose first [`CLUSTERS`] rankings are one anchor
/// per cluster — under `ShardStrategy::Medoid` with
/// `num_shards == CLUSTERS` they fill the medoid slots, so every
/// cluster lands on its own shard and the pivot/radius bound has
/// something to prune.
fn clustered_corpus(n: usize, seed: u64) -> Vec<Vec<ItemId>> {
    let mut rng = proptest::rng_from_seed(seed);
    let mut corpus: Vec<Vec<ItemId>> = (0..CLUSTERS)
        .map(|c| clustered_ranking(&mut rng, c))
        .collect();
    while corpus.len() < n {
        let cluster = rng.random_range(0..CLUSTERS);
        corpus.push(clustered_ranking(&mut rng, cluster));
    }
    corpus
}

fn monolith_of(corpus: &[Vec<ItemId>]) -> Engine {
    let mut store = RankingStore::new(K);
    for items in corpus {
        store.push_items_unchecked(items);
    }
    EngineBuilder::new(store)
        .coarse_threshold(0.4)
        .coarse_drop_threshold(0.06)
        .topk_tree(true)
        .build()
}

fn sharded_of(corpus: &[Vec<ItemId>]) -> ShardedEngine {
    let mut b = ShardedEngineBuilder::new(K, CLUSTERS as usize, ShardStrategy::Medoid)
        .coarse_threshold(0.4)
        .coarse_drop_threshold(0.06)
        .topk_trees(true);
    for items in corpus {
        b.push_ranking(items);
    }
    b.build()
}

/// Builds monolith + sharded twins over one clustered corpus, saves
/// the sharded snapshot under a test-private directory, and launches a
/// router over it. Global ids line up across all three by
/// construction (identical push order).
fn launch_trio(
    name: &str,
    n: usize,
    seed: u64,
) -> (Engine, ShardedEngine, RemoteShardedEngine, PathBuf) {
    let corpus = clustered_corpus(n, seed);
    let engine = monolith_of(&corpus);
    let sharded = sharded_of(&corpus);
    let dir = env::temp_dir().join(format!("ranksim-dist-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    save_sharded(&dir, &sharded).expect("save sharded snapshot");
    let remote = RemoteShardedEngine::launch(&dir, worker_spec(), RemoteOptions::default())
        .expect("launch shard workers");
    (engine, sharded, remote, dir)
}

fn queries_for(n_queries: usize, seed: u64) -> Vec<Vec<ItemId>> {
    let mut rng = proptest::rng_from_seed(seed ^ 0x0D15_7ED);
    (0..n_queries)
        .map(|i| clustered_ranking(&mut rng, i as u32 % CLUSTERS))
        .collect()
}

#[test]
fn distributed_equals_sharded_equals_monolith() {
    let (engine, sharded, mut remote, dir) = launch_trio("equiv", 360, 41);
    assert_eq!(remote.k(), K);
    assert_eq!(remote.num_workers(), CLUSTERS as usize);

    // The manifest the router ran on agrees with the engine it mirrors.
    let manifest = load_sharded_manifest(&dir).expect("re-read manifest");
    assert_eq!(manifest.k, K);
    assert_eq!(manifest.num_shards, CLUSTERS as usize);
    assert_eq!(manifest.len(), sharded.len());

    let mut mscratch = engine.scratch();
    let mut sscratch = sharded.scratch();
    let mut stats = QueryStats::new();
    for query in &queries_for(4, 41) {
        for theta in [0.05, 0.2, 0.45] {
            let raw = raw_threshold(theta, K);
            let mut expect =
                engine.query_items(Algorithm::Fv, query, raw, &mut mscratch, &mut stats);
            expect.sort_unstable();
            for alg in Algorithm::ALL.iter().copied().chain([Algorithm::Auto]) {
                let in_proc = sharded.query_items(alg, query, raw, &mut sscratch, &mut stats);
                assert_eq!(in_proc, expect, "{alg} sharded ≠ monolith at θ={theta}");
                let dist = remote
                    .query_threshold(alg, query, raw)
                    .expect("distributed threshold query");
                assert_eq!(dist, expect, "{alg} distributed ≠ monolith at θ={theta}");
            }
        }
        for neighbours in [1usize, 5, 17] {
            let expect = engine.query_topk(query, neighbours, &mut mscratch, &mut stats);
            let in_proc = sharded.query_topk(query, neighbours, &mut sscratch, &mut stats);
            assert_eq!(in_proc, expect, "sharded top-{neighbours} ≠ monolith");
            let dist = remote
                .query_topk(query, neighbours)
                .expect("distributed top-k query");
            assert_eq!(dist, expect, "distributed top-{neighbours} ≠ monolith");
        }
    }

    let stats = remote.take_stats();
    assert_eq!(stats.worker_deaths, 0, "no worker died in the happy path");
    assert_eq!(stats.hedges, 0, "no straggler in the happy path");
    // Clustered corpus + tight θ: the pivot/radius bound must have
    // skipped cross-cluster shards — and every answer above matched.
    assert!(
        stats.fanout_pruned > 0,
        "medoid pruning never fired on a clustered corpus"
    );
    drop(remote);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pruned_fanout_reduces_requests_and_stays_exact() {
    let (engine, _sharded, mut remote, dir) = launch_trio("prune", 280, 77);
    let workers = remote.num_workers() as u64;
    let mut mscratch = engine.scratch();
    let mut stats = QueryStats::new();
    let queries = queries_for(6, 77);
    let raw = raw_threshold(0.05, K);
    for query in &queries {
        let mut expect = engine.query_items(Algorithm::Fv, query, raw, &mut mscratch, &mut stats);
        expect.sort_unstable();
        let dist = remote
            .query_threshold(Algorithm::Fv, query, raw)
            .expect("pruned threshold query");
        assert_eq!(dist, expect, "pruned fan-out changed an answer");
    }
    let rstats = remote.take_stats();
    // Accounting closes: every (query, worker) pair was either sent or
    // provably-empty pruned.
    assert_eq!(
        rstats.fanout_sent + rstats.fanout_pruned,
        queries.len() as u64 * workers,
        "fan-out accounting leak"
    );
    assert!(
        rstats.fanout_pruned >= queries.len() as u64,
        "tight-θ clustered queries should prune most cross-cluster shards \
         (pruned {} of {})",
        rstats.fanout_pruned,
        queries.len() as u64 * workers
    );
    drop(remote);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: SIGKILL a shard worker mid-batch. The router must detect
/// the death on the next query that fans out to it, respawn the worker
/// from its snapshot, and keep every surviving answer bit-identical to
/// the in-process oracle; at worst the in-flight query fails **typed**,
/// never silently truncated.
#[test]
fn sigkilled_worker_mid_batch_respawns_and_answers_stay_exact() {
    let (_engine, sharded, mut remote, dir) = launch_trio("sigkill", 300, 93);
    let mut sscratch = sharded.scratch();
    let mut stats = QueryStats::new();
    // Loose θ: no pruning, every query fans out to every worker — the
    // killed shard cannot be dodged.
    let raw = raw_threshold(0.45, K);
    let queries = queries_for(10, 93);
    let oracle: Vec<Vec<RankingId>> = queries
        .iter()
        .map(|q| sharded.query_items(Algorithm::Fv, q, raw, &mut sscratch, &mut stats))
        .collect();

    let mut failures = 0u64;
    for (qi, query) in queries.iter().enumerate() {
        if qi == 3 {
            assert!(remote.kill_worker(0), "shard 0 has a worker to kill");
        }
        match remote.query_threshold(Algorithm::Fv, query, raw) {
            Ok(got) => assert_eq!(
                got, oracle[qi],
                "query {qi} diverged from the oracle after the kill"
            ),
            // A typed per-query failure is the only acceptable
            // alternative to a correct answer.
            Err(RemoteError::WorkerDied { shard, .. }) | Err(RemoteError::TimedOut { shard }) => {
                assert_eq!(shard, 0, "only the killed shard may fail");
                failures += 1;
            }
            Err(other) => panic!("query {qi} failed untyped: {other}"),
        }
    }
    assert!(failures <= 1, "at most the in-flight query may fail");

    let rstats = remote.take_stats();
    assert!(rstats.worker_deaths >= 1, "the SIGKILL went undetected");
    assert!(rstats.respawns >= 1, "the dead worker was never respawned");

    // The respawned worker serves top-k too — the fleet fully healed.
    let expect = sharded.query_topk(&queries[0], 9, &mut sscratch, &mut stats);
    let got = remote
        .query_topk(&queries[0], 9)
        .expect("top-k after respawn");
    assert_eq!(got, expect, "post-respawn top-k diverged");
    drop(remote);
    let _ = std::fs::remove_dir_all(&dir);
}
