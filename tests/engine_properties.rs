//! Property tests over the full engine: random corpora, random queries,
//! random thresholds — all algorithms must agree with brute force, and
//! the paper's structural claims must hold.

use proptest::prelude::*;
use ranksim::metricspace::query_pairs;
use ranksim::prelude::*;

/// Strategy: a corpus of `n` size-`k` rankings over `0..domain`, biased
/// towards overlap so result sets are non-trivial.
fn corpus(n: usize, k: usize, domain: u32) -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(
        proptest::sample::subsequence((0..domain).collect::<Vec<u32>>(), k).prop_shuffle(),
        n,
    )
}

fn build_engine(rankings: &[Vec<u32>], theta_c: f64) -> Engine {
    let k = rankings[0].len();
    let mut store = RankingStore::new(k);
    for r in rankings {
        store
            .push(&Ranking::new(r.iter().copied()).unwrap())
            .unwrap();
    }
    EngineBuilder::new(store).coarse_threshold(theta_c).build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_algorithms_equal_brute_force(
        rankings in corpus(60, 6, 25),
        query in proptest::sample::subsequence((0..25u32).collect::<Vec<u32>>(), 6).prop_shuffle(),
        theta in 0.0f64..0.5,
        theta_c in 0.05f64..0.6,
    ) {
        let engine = build_engine(&rankings, theta_c);
        let store = engine.store();
        let raw = raw_threshold(theta, 6);
        let q: Vec<ItemId> = query.into_iter().map(ItemId).collect();
        let qmap = PositionMap::new(&q);
        let mut expect: Vec<RankingId> = store
            .ids()
            .filter(|&id| qmap.distance_to(store.items(id)) <= raw)
            .collect();
        expect.sort_unstable();
        let mut scratch = engine.scratch();
        for alg in Algorithm::ALL {
            let mut stats = QueryStats::new();
            let mut got = engine.query_items(alg, &q, raw, &mut scratch, &mut stats);
            got.sort_unstable();
            prop_assert_eq!(&got, &expect, "{} disagrees (θ={}, θC={})", alg, theta, theta_c);
        }
    }

    #[test]
    fn result_sets_grow_with_threshold(
        rankings in corpus(50, 6, 20),
        query in proptest::sample::subsequence((0..20u32).collect::<Vec<u32>>(), 6).prop_shuffle(),
    ) {
        let engine = build_engine(&rankings, 0.3);
        let q: Vec<ItemId> = query.into_iter().map(ItemId).collect();
        let mut prev = 0usize;
        let mut scratch = engine.scratch();
        for raw in (0..=42u32).step_by(6) {
            let mut stats = QueryStats::new();
            let got = engine.query_items(Algorithm::Coarse, &q, raw, &mut scratch, &mut stats);
            prop_assert!(got.len() >= prev);
            prev = got.len();
        }
    }

    #[test]
    fn self_query_at_zero_returns_duplicates_only(
        rankings in corpus(40, 5, 15),
        pick in 0usize..40,
    ) {
        let engine = build_engine(&rankings, 0.2);
        let store = engine.store();
        let q: Vec<ItemId> = store.items(RankingId(pick as u32)).to_vec();
        let mut stats = QueryStats::new();
        let mut scratch = engine.scratch();
        let got = engine.query_items(Algorithm::CoarseDrop, &q, 0, &mut scratch, &mut stats);
        prop_assert!(got.contains(&RankingId(pick as u32)));
        for id in got {
            prop_assert_eq!(store.items(id), q.as_slice());
        }
    }

    #[test]
    fn coarse_partition_count_bounded_by_corpus(
        rankings in corpus(50, 5, 18),
        theta_c in 0.0f64..0.9,
    ) {
        let engine = build_engine(&rankings, theta_c);
        let parts = engine.coarse_index().num_partitions();
        prop_assert!((1..=50).contains(&parts));
    }

    #[test]
    fn metric_trees_agree_with_engine(
        rankings in corpus(40, 5, 16),
        query in proptest::sample::subsequence((0..16u32).collect::<Vec<u32>>(), 5).prop_shuffle(),
        theta in 0.0f64..0.6,
    ) {
        use ranksim::metricspace::{BkTree, MTree};
        let engine = build_engine(&rankings, 0.3);
        let store = engine.store();
        let raw = raw_threshold(theta, 5);
        let q: Vec<ItemId> = query.into_iter().map(ItemId).collect();
        let qp = query_pairs(&q);
        let mut stats = QueryStats::new();
        let mut scratch = engine.scratch();
        let mut via_engine = engine.query_items(Algorithm::Fv, &q, raw, &mut scratch, &mut stats);
        let mut via_bk = BkTree::build(store).range_query(store, &qp, raw, &mut stats);
        let mut via_m = MTree::build(store).range_query(store, &qp, raw, &mut stats);
        via_engine.sort_unstable();
        via_bk.sort_unstable();
        via_m.sort_unstable();
        prop_assert_eq!(&via_bk, &via_engine);
        prop_assert_eq!(&via_m, &via_engine);
    }
}
