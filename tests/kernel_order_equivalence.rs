//! Differential harness for the engine-level kernel/ordering grid: an
//! engine built with the SIMD kernel and/or suffix-bound-ordered
//! postings must be **indistinguishable** from the scalar,
//! insertion-ordered oracle — across every algorithm of the paper's
//! evaluation, the `Auto` planner, exact top-k, and through the mutable
//! delta plane (which maintains its own suffix-bound ordering).
//!
//! Thresholds compare canonical (sorted) result sets; top-k answers
//! must be bit-identical `(distance, id)` sequences. The deterministic
//! tests additionally pin that tight thresholds actually exercise the
//! rank-window scan (`postings_skipped > 0`) — an equivalence suite
//! that never skips a posting would prove nothing about the window.

use proptest::prelude::*;
use ranksim::datasets::nyt_like;
use ranksim::prelude::*;

/// The three non-oracle cells of the (order × kernel) grid.
const ARMS: [(PostingOrder, Kernel); 3] = [
    (PostingOrder::Id, Kernel::Simd),
    (PostingOrder::SuffixBound, Kernel::Scalar),
    (PostingOrder::SuffixBound, Kernel::Simd),
];

fn corpus(n: usize, k: usize, domain: u32) -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(
        proptest::sample::subsequence((0..domain).collect::<Vec<u32>>(), k).prop_shuffle(),
        n,
    )
}

fn store_of(rankings: &[Vec<u32>]) -> RankingStore {
    let k = rankings[0].len();
    let mut store = RankingStore::new(k);
    for r in rankings {
        store
            .push(&Ranking::new(r.iter().copied()).unwrap())
            .unwrap();
    }
    store
}

fn grid_engine(store: RankingStore, order: PostingOrder, kernel: Kernel) -> Engine {
    EngineBuilder::new(store)
        .coarse_threshold(0.4)
        .coarse_drop_threshold(0.06)
        .topk_tree(true)
        .posting_order(order)
        .kernel(kernel)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every algorithm plus `Auto` plus top-k: each grid arm equals the
    /// scalar/insertion-ordered oracle on random corpora and mixed θ
    /// (the low end drives the rank window, the high end the kernel's
    /// suffix-bound abort).
    #[test]
    fn grid_arms_equal_the_scalar_unordered_oracle(
        rankings in corpus(70, 6, 22),
        query in proptest::sample::subsequence((0..22u32).collect::<Vec<u32>>(), 6).prop_shuffle(),
        theta in 0.0f64..0.5,
        neighbours in 1usize..20,
    ) {
        let store = store_of(&rankings);
        let raw = raw_threshold(theta, 6);
        let q: Vec<ItemId> = query.into_iter().map(ItemId).collect();
        let oracle = grid_engine(store.clone(), PostingOrder::Id, Kernel::Scalar);
        let mut oscratch = oracle.scratch();
        let mut ostats = QueryStats::new();
        let topk_expect = oracle.query_topk(&q, neighbours, &mut oscratch, &mut ostats);
        for (order, kernel) in ARMS {
            let arm = grid_engine(store.clone(), order, kernel);
            prop_assert_eq!(arm.posting_order(), order);
            prop_assert_eq!(arm.kernel(), kernel);
            let mut scratch = arm.scratch();
            let mut stats = QueryStats::new();
            for alg in Algorithm::ALL.into_iter().chain([Algorithm::Auto]) {
                let mut expect = oracle.query_items(alg, &q, raw, &mut oscratch, &mut ostats);
                expect.sort_unstable();
                let mut got = arm.query_items(alg, &q, raw, &mut scratch, &mut stats);
                got.sort_unstable();
                prop_assert_eq!(
                    got, expect,
                    "{} ({:?}, {:?}) θ={}", alg, order, kernel, theta
                );
            }
            let topk = arm.query_topk(&q, neighbours, &mut scratch, &mut stats);
            prop_assert_eq!(&topk, &topk_expect, "top-k ({:?}, {:?})", order, kernel);
        }
    }

    /// The grid arms stay equivalent **through mutations**: inserts land
    /// in the suffix-bound-ordered delta index, removals in the
    /// tombstone plane — answers must keep matching the oracle engine
    /// mutated identically.
    #[test]
    fn grid_arms_stay_equivalent_through_mutations(
        rankings in corpus(50, 5, 16),
        inserts in corpus(6, 5, 16),
        query in proptest::sample::subsequence((0..16u32).collect::<Vec<u32>>(), 5).prop_shuffle(),
        theta in 0.0f64..0.4,
        victim in 0u32..50,
    ) {
        let store = store_of(&rankings);
        let raw = raw_threshold(theta, 5);
        let q: Vec<ItemId> = query.into_iter().map(ItemId).collect();
        let mutate = |engine: &mut Engine| {
            for ins in &inserts {
                let items: Vec<ItemId> = ins.iter().copied().map(ItemId).collect();
                engine.insert_ranking(&items);
            }
            engine.remove_ranking(RankingId(victim));
        };
        let mut oracle = grid_engine(store.clone(), PostingOrder::Id, Kernel::Scalar);
        mutate(&mut oracle);
        let mut oscratch = oracle.scratch();
        let mut ostats = QueryStats::new();
        for (order, kernel) in ARMS {
            let mut arm = grid_engine(store.clone(), order, kernel);
            mutate(&mut arm);
            let mut scratch = arm.scratch();
            let mut stats = QueryStats::new();
            for alg in Algorithm::ALL.into_iter().chain([Algorithm::Auto]) {
                let mut expect = oracle.query_items(alg, &q, raw, &mut oscratch, &mut ostats);
                expect.sort_unstable();
                let mut got = arm.query_items(alg, &q, raw, &mut scratch, &mut stats);
                got.sort_unstable();
                prop_assert_eq!(
                    got, expect,
                    "{} ({:?}, {:?}) θ={} after mutations", alg, order, kernel, theta
                );
            }
        }
    }
}

/// Tight thresholds on a realistic corpus must actually exercise the
/// suffix-bound rank window — postings skipped, results unchanged. At
/// k = 10 a raw threshold below the maximum rank displacement (9) is
/// required for the window to bite; θ = 0.05 gives raw 5.
#[test]
fn tight_thresholds_skip_postings_without_changing_results() {
    let ds = nyt_like(2000, 10, 91);
    let oracle = grid_engine(ds.store.clone(), PostingOrder::Id, Kernel::Scalar);
    let suffix = grid_engine(ds.store.clone(), PostingOrder::SuffixBound, Kernel::Simd);
    let raw = raw_threshold(0.05, 10);
    let mut oscratch = oracle.scratch();
    let mut sscratch = suffix.scratch();
    let mut ostats = QueryStats::new();
    let mut sstats = QueryStats::new();
    for probe in 0..40u32 {
        let q = ds.store.items(RankingId(probe * 7)).to_vec();
        for alg in Algorithm::ALL {
            let mut expect = oracle.query_items(alg, &q, raw, &mut oscratch, &mut ostats);
            expect.sort_unstable();
            let mut got = suffix.query_items(alg, &q, raw, &mut sscratch, &mut sstats);
            got.sort_unstable();
            assert_eq!(got, expect, "{alg} at tight θ");
        }
    }
    assert!(
        sstats.postings_skipped > 0,
        "tight θ on a suffix-bound engine must window out postings"
    );
    assert_eq!(
        ostats.postings_skipped, 0,
        "the insertion-ordered oracle never windows"
    );
}
