//! Differential mutation-fuzz harness: a **live** corpus must be
//! indistinguishable from a freshly built one.
//!
//! Each case derives a random interleaving of ≥200 insert / remove /
//! compact operations from its proptest case seed and replays it against
//! three targets at once:
//!
//! * a mutated monolithic [`Engine`] (all eight algorithms + `Auto`, a
//!   top-k tree absorbing inserts, auto-compaction armed),
//! * mutated [`ShardedEngine`]s at S ∈ {1, 2, 7} with auto-rebalancing
//!   enabled (skewed inserts migrate rankings between shards mid-run),
//! * the **oracle**: at every checkpoint, an engine freshly built from
//!   the model corpus at the *original ranking ids* (holes where the
//!   live corpus has none — see [`RankingStore::push_hole`]).
//!
//! Threshold answers are compared as canonical (sorted) id sets for every
//! algorithm including `Auto`; top-k answers must be **bit-identical**
//! `(distance, id)` sequences, which the lexicographic KNN-heap tie rule
//! guarantees only if tombstones, delta overlays, compaction and shard
//! migration all preserve it — exactly what this harness fuzzes.
//!
//! The vendored proptest does not shrink, but every failure prints a
//! `RANKSIM_PROPTEST_SEED=0x…` line replaying exactly the failing case;
//! `seed_line_replays_the_exact_failing_case` below verifies that the
//! seed alone reconstructs the case (op sequence and all), and the
//! deliberately failing `#[should_panic]` case proves the line is
//! printed for *this* harness.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use ranksim::prelude::*;

const K: usize = 8;
const DOMAIN: u32 = 64;
const SHARD_COUNTS: [usize; 3] = [1, 2, 7];
const CHECK_EVERY: usize = 80;

/// One mutation of the interleaving.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Op {
    Insert(Vec<ItemId>),
    Remove(RankingId),
    Compact,
}

/// The model corpus: `model[id] = Some(items)` iff ranking `id` is live.
type Model = Vec<Option<Vec<ItemId>>>;

fn random_ranking(rng: &mut StdRng, model: &Model) -> Vec<ItemId> {
    let live: Vec<&Vec<ItemId>> = model.iter().flatten().collect();
    if !live.is_empty() && rng.random_bool(0.6) {
        // Perturb a live ranking: near-duplicates create distance ties,
        // the regime where tombstones can corrupt top-k tie handling.
        let mut items = live[rng.random_range(0..live.len())].clone();
        if rng.random_bool(0.5) {
            let a = rng.random_range(0..K);
            let b = rng.random_range(0..K);
            items.swap(a, b);
        } else {
            let p = rng.random_range(0..K);
            // Occasionally an item the corpus has never seen (exercises
            // remap growth at compaction).
            let span = if rng.random_bool(0.2) {
                100_000
            } else {
                DOMAIN
            };
            let mut cand = ItemId(rng.random_range(0..span));
            while items.contains(&cand) {
                cand = ItemId(rng.random_range(0..span));
            }
            items[p] = cand;
        }
        items
    } else {
        let mut items = Vec::with_capacity(K);
        while items.len() < K {
            let cand = ItemId(rng.random_range(0..DOMAIN));
            if !items.contains(&cand) {
                items.push(cand);
            }
        }
        items
    }
}

/// Derives the whole case — initial corpus and op interleaving — from a
/// seed. Deterministic: the same seed always yields the same case, which
/// is what makes the `RANKSIM_PROPTEST_SEED` replay line sufficient.
fn derive_case(seed: u64, initial: usize, ops: usize) -> (Vec<Vec<ItemId>>, Vec<Op>) {
    let mut rng = proptest::rng_from_seed(seed);
    let mut model: Model = Vec::new();
    let mut corpus = Vec::with_capacity(initial);
    for _ in 0..initial {
        let items = random_ranking(&mut rng, &model);
        model.push(Some(items.clone()));
        corpus.push(items);
    }
    let mut sequence = Vec::with_capacity(ops);
    for _ in 0..ops {
        let live: Vec<u32> = (0..model.len() as u32)
            .filter(|&i| model[i as usize].is_some())
            .collect();
        let roll = rng.random_range(0..100u32);
        let op = if roll < 8 && !live.is_empty() {
            Op::Compact
        } else if roll < 54 || live.len() < 8 {
            let items = random_ranking(&mut rng, &model);
            model.push(Some(items.clone()));
            Op::Insert(items)
        } else {
            let victim = live[rng.random_range(0..live.len())];
            model[victim as usize] = None;
            Op::Remove(RankingId(victim))
        };
        sequence.push(op);
    }
    (corpus, sequence)
}

/// A freshly built engine over the model corpus *at the original ids*:
/// live rankings at their ids, holes elsewhere. Its index structures
/// contain only the live corpus — no tombstones, no overlay.
fn oracle_engine(model: &Model) -> Engine {
    let mut store = RankingStore::new(K);
    for slot in model {
        match slot {
            Some(items) => {
                store.push_items_unchecked(items);
            }
            None => {
                store.push_hole();
            }
        }
    }
    EngineBuilder::new(store)
        .coarse_threshold(0.4)
        .coarse_drop_threshold(0.06)
        .calibrated_costs(CalibratedCosts::nominal(K))
        .topk_tree(true)
        .build()
}

struct Harness {
    engine: Engine,
    sharded: Vec<ShardedEngine>,
    model: Model,
}

impl Harness {
    fn new(corpus: &[Vec<ItemId>]) -> Harness {
        let mut store = RankingStore::new(K);
        for items in corpus {
            store.push_items_unchecked(items);
        }
        let engine = EngineBuilder::new(store.clone())
            .coarse_threshold(0.4)
            .coarse_drop_threshold(0.06)
            .calibrated_costs(CalibratedCosts::nominal(K))
            .topk_tree(true)
            .compaction_threshold(0.4) // auto-compaction in the loop
            .build();
        let sharded = SHARD_COUNTS
            .iter()
            .map(|&s| {
                let mut b = ShardedEngineBuilder::new(K, s, ShardStrategy::Hash)
                    .coarse_threshold(0.4)
                    .coarse_drop_threshold(0.06)
                    .calibrated_costs(CalibratedCosts::nominal(K))
                    .topk_trees(true)
                    .rebalance(RebalanceConfig {
                        skew_factor: 1.4,
                        min_gap: 12,
                        auto: true, // migrations fire mid-interleaving
                    });
                b.extend_from_store(&store);
                b.build()
            })
            .collect();
        let model = corpus.iter().cloned().map(Some).collect();
        Harness {
            engine,
            sharded,
            model,
        }
    }

    fn apply(&mut self, op: &Op) {
        match op {
            Op::Insert(items) => {
                let expect = RankingId(self.model.len() as u32);
                let got = self.engine.insert_ranking(items);
                assert_eq!(got, expect, "monolith id assignment is monotone");
                for sh in &mut self.sharded {
                    assert_eq!(sh.insert_ranking(items), expect, "sharded ids agree");
                }
                self.model.push(Some(items.clone()));
            }
            Op::Remove(id) => {
                assert!(self.engine.remove_ranking(*id));
                assert!(!self.engine.remove_ranking(*id), "double remove no-ops");
                for sh in &mut self.sharded {
                    assert!(sh.remove_ranking(*id));
                    assert!(!sh.remove_ranking(*id));
                }
                self.model[id.index()] = None;
            }
            Op::Compact => {
                self.engine.compact();
                for sh in &mut self.sharded {
                    sh.compact();
                }
            }
        }
    }

    /// The differential checkpoint: every algorithm (and `Auto`) on every
    /// engine vs the freshly built oracle.
    fn check(&self, rng: &mut StdRng) -> Result<(), proptest::TestCaseError> {
        let oracle = oracle_engine(&self.model);
        let live = self.engine.live_len();
        prop_assert_eq!(live, oracle.live_len());
        let mut queries: Vec<Vec<ItemId>> = Vec::new();
        for _ in 0..3 {
            queries.push(random_ranking(rng, &self.model));
        }
        let mut oscratch = oracle.scratch();
        let mut mscratch = self.engine.scratch();
        let mut stats = QueryStats::new();
        for q in &queries {
            for theta in [0.0, 0.12, 0.3] {
                let raw = raw_threshold(theta, K);
                let mut expect =
                    oracle.query_items(Algorithm::Fv, q, raw, &mut oscratch, &mut stats);
                expect.sort_unstable();
                for alg in Algorithm::ALL.iter().copied().chain([Algorithm::Auto]) {
                    let mut got = self
                        .engine
                        .query_items(alg, q, raw, &mut mscratch, &mut stats);
                    got.sort_unstable();
                    prop_assert_eq!(
                        &got,
                        &expect,
                        "monolith {} diverged at θ={} (live={})",
                        alg,
                        theta,
                        live
                    );
                }
                for (si, sh) in self.sharded.iter().enumerate() {
                    let mut ss = sh.scratch();
                    let got = sh.query_items(Algorithm::Fv, q, raw, &mut ss, &mut stats);
                    prop_assert_eq!(
                        &got,
                        &expect,
                        "sharded S={} diverged at θ={}",
                        SHARD_COUNTS[si],
                        theta
                    );
                    let mut gota = sh.query_items(Algorithm::Auto, q, raw, &mut ss, &mut stats);
                    gota.sort_unstable();
                    prop_assert_eq!(&gota, &expect, "sharded Auto S={}", SHARD_COUNTS[si]);
                }
            }
            for kn in [1usize, 5, 17] {
                let expect = oracle.query_topk(q, kn, &mut oscratch, &mut stats);
                let got = self.engine.query_topk(q, kn, &mut mscratch, &mut stats);
                prop_assert_eq!(&got, &expect, "monolith topk k={} (live={})", kn, live);
                for (si, sh) in self.sharded.iter().enumerate() {
                    let mut ss = sh.scratch();
                    let got = sh.query_topk(q, kn, &mut ss, &mut stats);
                    prop_assert_eq!(
                        &got,
                        &expect,
                        "sharded topk S={} k={}",
                        SHARD_COUNTS[si],
                        kn
                    );
                }
            }
        }
        Ok(())
    }
}

fn run_case(seed: u64, initial: usize, ops: usize) -> Result<(), proptest::TestCaseError> {
    let (corpus, sequence) = derive_case(seed, initial, ops);
    let mut rng = proptest::rng_from_seed(seed ^ 0x5EED);
    let mut harness = Harness::new(&corpus);
    for (i, op) in sequence.iter().enumerate() {
        harness.apply(op);
        if (i + 1) % CHECK_EVERY == 0 {
            harness.check(&mut rng)?;
        }
    }
    harness.check(&mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The acceptance property: after any interleaving of ≥200
    /// insert/remove/compact operations, every algorithm (incl. `Auto`)
    /// and every sharded configuration (rebalancing enabled) answers
    /// threshold and top-k queries bit-identically to the oracle.
    #[test]
    fn any_mutation_interleaving_matches_a_fresh_oracle(
        seed in 0u64..u64::MAX,
        initial in 100usize..150,
        ops in 200usize..250,
    ) {
        run_case(seed, initial, ops)?;
    }
}

/// The replay contract behind the `RANKSIM_PROPTEST_SEED` line: the case
/// seed alone reconstructs the exact failing case — op sequence, queries
/// and all — so the printed override replays it verbatim. (The override
/// itself feeds `proptest::seed_override` → the same `rng_from_seed`
/// used here; an env-var round-trip in-process would race the other
/// proptests in this binary, so the seed path is verified directly.)
#[test]
fn seed_line_replays_the_exact_failing_case() {
    let mut master = proptest::test_rng("mutation_equivalence::replay");
    for _ in 0..3 {
        let seed = proptest::case_seed(&mut master);
        let (corpus_a, ops_a) = derive_case(seed, 120, 210);
        let (corpus_b, ops_b) = derive_case(seed, 120, 210);
        assert_eq!(corpus_a, corpus_b, "seed does not pin the corpus");
        assert_eq!(ops_a, ops_b, "seed does not pin the interleaving");
        assert!(
            ops_a.len() >= 200,
            "acceptance demands ≥200-op interleavings"
        );
        // And a full deterministic end-to-end replay: same seed, same
        // verdict (both runs green on a correct engine).
        run_case(seed, 40, 60).expect("replay run 1");
        run_case(seed, 40, 60).expect("replay run 2");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1))]

    /// A deliberately failing mutation case: the panic must carry the
    /// exact `RANKSIM_PROPTEST_SEED=0x…` re-run line for THIS harness —
    /// the no-shrinking replay stopgap (see vendor/README.md).
    #[test]
    #[should_panic(expected = "re-run exactly this case with: RANKSIM_PROPTEST_SEED=0x")]
    fn failing_mutation_case_prints_replay_seed(seed in 0u64..u64::MAX) {
        let (corpus, sequence) = derive_case(seed, 20, 30);
        let mut harness = Harness::new(&corpus);
        for op in &sequence {
            harness.apply(op);
        }
        // An impossible claim about the mutated corpus.
        prop_assert_eq!(harness.engine.live_len(), usize::MAX, "synthetic failure");
    }
}
