//! Regression harness for queries containing items the corpus has
//! **never** seen — in any generation.
//!
//! Historically the index build/query paths unwrapped
//! `remap.dense(item)` on the assumption that every item flowing
//! through them was known to the corpus remap; a serving front-end
//! breaks that assumption with the very first ad-hoc query. The
//! hardened contract: an unknown item behaves as an empty postings
//! list (it matches nothing, contributes no candidates), and the query
//! completes with exactly the linear-scan answer — on the monolith
//! (every algorithm and `Auto`, threshold and top-k), on a
//! mutated-then-compacted engine, on the sharded engine, and through a
//! [`SnapshotEngine`] snapshot.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ranksim::datasets::nyt_like;
use ranksim::prelude::*;

const K: usize = 10;
/// Items at or above this id never appear in any corpus generation.
const NEVER: u32 = 1_000_000;

/// The ground truth: exact Footrule distance of every live ranking.
fn linear_scan(engine: &Engine, q: &[ItemId], raw: u32) -> Vec<RankingId> {
    let pm = PositionMap::new(q);
    let store = engine.store();
    (0..store.len() as u32)
        .map(RankingId)
        .filter(|&id| engine.is_live(id) && pm.distance_to(store.items(id)) <= raw)
        .collect()
}

/// Top-k ground truth: bit-identical `(distance, id)` under the
/// lexicographic tie rule.
fn linear_topk(engine: &Engine, q: &[ItemId], kn: usize) -> Vec<(u32, RankingId)> {
    let pm = PositionMap::new(q);
    let store = engine.store();
    let mut all: Vec<(u32, RankingId)> = (0..store.len() as u32)
        .map(RankingId)
        .filter(|&id| engine.is_live(id))
        .map(|id| (pm.distance_to(store.items(id)), id))
        .collect();
    all.sort_unstable();
    all.truncate(kn);
    all
}

/// Query batteries: fully never-seen, and live rankings with 1, 3 and
/// 5 positions replaced by never-seen items.
fn query_battery(engine: &Engine, seed: u64) -> Vec<Vec<ItemId>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let store = engine.store();
    let mut queries = Vec::new();
    for b in 0..2u32 {
        queries.push((0..K as u32).map(|j| ItemId(NEVER + 100 * b + j)).collect());
    }
    for &replace in &[1usize, 3, 5] {
        for _ in 0..3 {
            let donor = loop {
                let id = RankingId(rng.random_range(0..store.len() as u32));
                if engine.is_live(id) {
                    break id;
                }
            };
            let mut items = store.items(donor).to_vec();
            for r in 0..replace {
                items[r * 2] = ItemId(NEVER + rng.random_range(0..100_000u32));
            }
            queries.push(items);
        }
    }
    queries
}

fn check_engine(engine: &Engine, queries: &[Vec<ItemId>], label: &str) {
    let mut scratch = engine.scratch();
    let mut stats = QueryStats::new();
    for (qi, q) in queries.iter().enumerate() {
        for theta in [0.0, 0.1, 0.3] {
            let raw = raw_threshold(theta, K);
            let mut expect = linear_scan(engine, q, raw);
            expect.sort_unstable();
            for alg in Algorithm::ALL.iter().copied().chain([Algorithm::Auto]) {
                let mut got = engine.query_items(alg, q, raw, &mut scratch, &mut stats);
                got.sort_unstable();
                assert_eq!(
                    got, expect,
                    "{label}: {alg} diverged from the linear scan on query {qi} at θ={theta}"
                );
            }
        }
        for kn in [1usize, 4, 12] {
            let expect = linear_topk(engine, q, kn);
            let got = engine.query_topk(q, kn, &mut scratch, &mut stats);
            assert_eq!(got, expect, "{label}: topk k={kn} on query {qi}");
        }
    }
}

#[test]
fn never_seen_query_items_match_the_linear_scan_everywhere() {
    let ds = nyt_like(600, K, 77);

    // -- Pristine monolith --------------------------------------------
    let engine = EngineBuilder::new(ds.store.clone())
        .coarse_threshold(0.4)
        .coarse_drop_threshold(0.06)
        .calibrated_costs(CalibratedCosts::nominal(K))
        .topk_tree(true)
        .build();
    let queries = query_battery(&engine, 0xBEEF);
    check_engine(&engine, &queries, "pristine");

    // -- Mutated then compacted ---------------------------------------
    // Inserts introduce items unknown at build time (500k range, still
    // disjoint from the never-seen range), removes punch holes; one
    // overlay check, then compaction folds everything and grows the
    // remap — the never-seen query items must stay unknown throughout.
    let mut live = EngineBuilder::new(ds.store.clone())
        .coarse_threshold(0.4)
        .coarse_drop_threshold(0.06)
        .calibrated_costs(CalibratedCosts::nominal(K))
        .topk_tree(true)
        .compaction_threshold(f64::INFINITY)
        .build();
    let mut rng = StdRng::seed_from_u64(0xF00D);
    for i in 0..60u32 {
        if i % 3 == 0 {
            let items: Vec<ItemId> = (0..K as u32)
                .map(|j| ItemId(500_000 + i * 32 + j))
                .collect();
            live.insert_ranking(&items);
        } else {
            let victim = loop {
                let id = RankingId(rng.random_range(0..live.store().len() as u32));
                if live.is_live(id) {
                    break id;
                }
            };
            live.remove_ranking(victim);
        }
    }
    check_engine(&live, &queries, "mutated (overlay)");
    live.compact();
    assert_eq!(live.base_tombstones(), 0);
    check_engine(&live, &queries, "mutated (compacted)");

    // -- Sharded -------------------------------------------------------
    let mut sharded_builder = ShardedEngineBuilder::new(K, 3, ShardStrategy::Hash)
        .coarse_threshold(0.4)
        .coarse_drop_threshold(0.06)
        .calibrated_costs(CalibratedCosts::nominal(K));
    sharded_builder.extend_from_store(&ds.store);
    let sharded = sharded_builder.build();
    let mut sscratch = sharded.scratch();
    let mut sstats = QueryStats::new();
    for (qi, q) in queries.iter().enumerate() {
        for theta in [0.0, 0.1, 0.3] {
            let raw = raw_threshold(theta, K);
            let mut expect = linear_scan(&engine, q, raw);
            expect.sort_unstable();
            for alg in [Algorithm::Fv, Algorithm::Coarse, Algorithm::Auto] {
                let mut got = sharded.query_items(alg, q, raw, &mut sscratch, &mut sstats);
                got.sort_unstable();
                assert_eq!(got, expect, "sharded {alg} on query {qi} at θ={theta}");
            }
        }
    }

    // -- Snapshot engine ----------------------------------------------
    // The serving path this regression exists for: ad-hoc queries with
    // unknown items arriving at a snapshot while writes land.
    let service = SnapshotEngine::new(engine);
    let before = service.snapshot();
    for i in 0..20u32 {
        let items: Vec<ItemId> = (0..K as u32)
            .map(|j| ItemId(600_000 + i * 32 + j))
            .collect();
        service.insert_ranking(&items);
    }
    service.flush();
    let after = service.snapshot();
    check_engine(&before, &queries, "snapshot (pinned pre-write)");
    check_engine(&after, &queries, "snapshot (post-write)");
}
