//! Load-vs-rebuild differential harness for the `RSSN` snapshot format:
//! an engine re-opened from disk must be **indistinguishable** from the
//! engine that was saved, and a checkpoint + WAL-tail recovery must be
//! indistinguishable from PR 7's rebuild-from-scratch recovery at the
//! same log prefix.
//!
//! Four engine shapes go through save/load — pristine, mutated (live
//! delta + tombstones), mutated-then-compacted, and sharded — and every
//! loaded engine is checked against its source: all 8 fixed algorithms
//! as bit-identical result vectors, `Auto` as canonical id sets (two
//! planners may legitimately pick different executors once their online
//! recalibration diverges, but the answer set may not change), and
//! top-k as bit-identical `(distance, id)` sequences.

use std::path::PathBuf;

use ranksim::datasets::{nyt_like, workload, WorkloadParams};
use ranksim::prelude::*;

const K: usize = 8;
const THETAS: [f64; 3] = [0.1, 0.2, 0.3];

fn temp_dir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("ranksim-persisteq-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn temp_file(tag: &str, ext: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ranksim-persisteq-{tag}-{}.{ext}",
        std::process::id()
    ))
}

fn built_engine(n: usize, seed: u64) -> (Engine, Vec<Vec<ItemId>>) {
    let ds = nyt_like(n, K, seed);
    let wl = workload(
        &ds.store,
        ds.params.domain,
        WorkloadParams {
            num_queries: 12,
            seed: seed + 7,
            ..Default::default()
        },
    );
    let engine = EngineBuilder::new(ds.store)
        .coarse_threshold(0.4)
        .coarse_drop_threshold(0.06)
        .topk_tree(true)
        .build();
    (engine, wl.queries)
}

/// Applies a deterministic mutation mix: inserts of recombined live
/// rankings and removals, leaving a non-trivial delta plane + tombstones.
fn churn(engine: &mut Engine, rounds: usize) {
    for i in 0..rounds {
        let donor = RankingId((i * 3 % engine.store().len()) as u32);
        if engine.store().is_live(donor) {
            let mut items = engine.store().items(donor).to_vec();
            items.swap(i % K, (i + 3) % K);
            engine.insert_ranking(&items);
        }
        let victim = RankingId((i * 7 % engine.store().len()) as u32);
        engine.remove_ranking(victim);
    }
}

/// The full differential check between a source engine and its re-opened
/// double (see the module docs for the exactness tiers).
fn assert_engines_equivalent(src: &Engine, loaded: &Engine, queries: &[Vec<ItemId>]) {
    assert_eq!(src.live_len(), loaded.live_len());
    let mut ss = src.scratch();
    let mut sl = loaded.scratch();
    let mut stats = QueryStats::new();
    for q in queries {
        for theta in THETAS {
            let raw = raw_threshold(theta, K);
            for alg in Algorithm::ALL {
                let a = src.query_items(alg, q, raw, &mut ss, &mut stats);
                let b = loaded.query_items(alg, q, raw, &mut sl, &mut stats);
                assert_eq!(a, b, "{alg:?} θ={theta} diverged after load");
            }
            let mut a = src.query_items(Algorithm::Auto, q, raw, &mut ss, &mut stats);
            let mut b = loaded.query_items(Algorithm::Auto, q, raw, &mut sl, &mut stats);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "Auto θ={theta} diverged after load");
        }
        let a = src.query_topk(q, 10, &mut ss, &mut stats);
        let b = loaded.query_topk(q, 10, &mut sl, &mut stats);
        assert_eq!(a, b, "top-k diverged after load");
    }
}

#[test]
fn pristine_engine_round_trips() {
    let (engine, queries) = built_engine(400, 3);
    let path = temp_file("pristine", "rssn");
    save_engine(&path, &engine, SnapshotMeta::default()).expect("save");
    for mode in [LoadMode::Verify, LoadMode::Trust] {
        let (loaded, meta) = load_engine(&path, mode).expect("load");
        assert_eq!(meta, SnapshotMeta::default());
        assert_engines_equivalent(&engine, &loaded, &queries);
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn mutated_engine_round_trips_with_live_delta_and_tombstones() {
    let (mut engine, queries) = built_engine(400, 9);
    churn(&mut engine, 40);
    let path = temp_file("mutated", "rssn");
    save_engine(&path, &engine, SnapshotMeta::default()).expect("save");
    let (loaded, _) = load_engine(&path, LoadMode::Verify).expect("load");
    assert_engines_equivalent(&engine, &loaded, &queries);

    // The loaded engine is fully mutable: the same further churn on both
    // sides keeps them in lockstep (ranking-id assignment is a pure
    // function of store state, which the snapshot must have preserved).
    let mut src = engine;
    let mut dup = loaded;
    churn(&mut src, 10);
    churn(&mut dup, 10);
    assert_engines_equivalent(&src, &dup, &queries);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn compacted_engine_round_trips() {
    let (mut engine, queries) = built_engine(400, 17);
    churn(&mut engine, 60);
    engine.compact();
    let path = temp_file("compacted", "rssn");
    save_engine(&path, &engine, SnapshotMeta::default()).expect("save");
    let (loaded, _) = load_engine(&path, LoadMode::Verify).expect("load");
    assert_engines_equivalent(&engine, &loaded, &queries);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn sharded_engine_round_trips_under_both_strategies() {
    for (strategy, tag) in [
        (ShardStrategy::Hash, "hash"),
        (ShardStrategy::Medoid, "medoid"),
    ] {
        let ds = nyt_like(360, K, 23);
        let wl = workload(
            &ds.store,
            ds.params.domain,
            WorkloadParams {
                num_queries: 10,
                seed: 31,
                ..Default::default()
            },
        );
        let mut builder = ShardedEngineBuilder::new(K, 3, strategy)
            .coarse_threshold(0.4)
            .coarse_drop_threshold(0.06)
            .topk_trees(true);
        builder.extend_from_store(&ds.store);
        let mut sharded = builder.build();
        // Mutations so the shard directory holds holes and deltas.
        for i in 0..30u32 {
            sharded.remove_ranking(RankingId(i * 11 % 360));
        }
        for q in &wl.queries {
            sharded.insert_ranking(q);
        }

        let dir = temp_dir(tag);
        save_sharded(&dir, &sharded).expect("save sharded");
        let loaded = load_sharded(&dir, LoadMode::Verify).expect("load sharded");

        assert_eq!(loaded.num_shards(), sharded.num_shards());
        assert_eq!(loaded.live_len(), sharded.live_len());
        let mut ss = sharded.scratch();
        let mut sl = loaded.scratch();
        let mut stats = QueryStats::new();
        for q in &wl.queries {
            for theta in THETAS {
                let raw = raw_threshold(theta, K);
                for alg in [Algorithm::Fv, Algorithm::ListMerge, Algorithm::Coarse] {
                    let a = sharded.query_items(alg, q, raw, &mut ss, &mut stats);
                    let b = loaded.query_items(alg, q, raw, &mut sl, &mut stats);
                    assert_eq!(a, b, "sharded {alg:?} θ={theta} diverged ({tag})");
                }
            }
            let a = sharded.query_topk(q, 10, &mut ss, &mut stats);
            let b = loaded.query_topk(q, 10, &mut sl, &mut stats);
            assert_eq!(a, b, "sharded top-k diverged ({tag})");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// The serving-spine contract: `checkpoint` + `recover_from_snapshot`
/// (load the snapshot, replay only the WAL tail) must land on exactly
/// the corpus that PR 7's `recover` (replay the whole WAL over the base
/// corpus) produces at the same log prefix.
#[test]
fn checkpoint_recovery_matches_the_rebuild_oracle() {
    let wal_path = temp_file("oracle", "wal");
    let snap_path = temp_file("oracle", "rssn");
    let (base, queries) = built_engine(300, 41);
    // Engine builds are deterministic, so a second build from the same
    // seed is the bit-identical base corpus PR 7's recovery expects.
    let (oracle_base, _) = built_engine(300, 41);

    let se = SnapshotEngine::with_wal(base, &wal_path, SyncPolicy::PerOp).expect("wal");
    for (i, q) in queries.iter().cycle().take(18).enumerate() {
        if i % 5 == 4 {
            se.remove_ranking(RankingId((i * 13 % 300) as u32));
        } else {
            se.insert_ranking(q);
        }
        if i == 9 {
            se.flush();
            se.checkpoint(&snap_path).expect("mid-run checkpoint");
        }
    }
    se.flush();
    let end_pos = se.writer_pos();
    drop(se);

    let (warm, warm_report) = SnapshotEngine::recover_from_snapshot(
        &snap_path,
        &wal_path,
        SyncPolicy::PerOp,
        LoadMode::Verify,
    )
    .expect("warm recovery");
    let (cold, cold_report) =
        SnapshotEngine::recover(oracle_base, &wal_path, SyncPolicy::PerOp).expect("cold recovery");

    assert_eq!(cold_report.applied, end_pos);
    assert!(
        warm_report.applied < end_pos,
        "warm recovery must replay only the tail ({} vs {end_pos})",
        warm_report.applied
    );
    assert_eq!(warm.writer_pos(), cold.writer_pos());

    let ws = warm.snapshot();
    let cs = cold.snapshot();
    assert_engines_equivalent(cs.engine(), ws.engine(), &queries);
    drop(warm);
    drop(cold);
    let _ = std::fs::remove_file(&wal_path);
    let _ = std::fs::remove_file(&snap_path);
}
