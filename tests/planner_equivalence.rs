//! Differential harness for [`Algorithm::Auto`]: whatever the cost-model
//! planner picks, the **results must be algorithm-independent** — bit-
//! identical (after canonical sorting) to the `Fv` oracle — across mixed
//! thresholds, corpus shapes, restricted candidate sets, recalibration
//! state, and sharded vs monolithic engines.
//!
//! The planner is free to route different queries (and different shards
//! of the *same* query) to different executors; these tests pin down
//! that this freedom can never change an answer.

use proptest::prelude::*;
use ranksim::core::{merge_plan_reports, merge_reports, CalibratedCosts};
use ranksim::datasets::{nyt_like, workload, yago_like, WorkloadParams};
use ranksim::prelude::*;

fn oracle(engine: &Engine, q: &[ItemId], raw: u32, scratch: &mut QueryScratch) -> Vec<RankingId> {
    let mut stats = QueryStats::new();
    let mut out = engine.query_items(Algorithm::Fv, q, raw, scratch, &mut stats);
    out.sort_unstable();
    out
}

#[test]
fn auto_equals_fv_oracle_across_corpus_shapes_and_thetas() {
    for (name, ds) in [
        ("nyt", nyt_like(900, 10, 41)),
        ("yago", yago_like(700, 10, 42)),
    ] {
        let domain = ds.params.domain;
        let engine = EngineBuilder::new(ds.store)
            .coarse_threshold(0.5)
            .coarse_drop_threshold(0.06)
            .build();
        let wl = workload(
            engine.store(),
            domain,
            WorkloadParams {
                num_queries: 15,
                seed: 11,
                ..Default::default()
            },
        );
        let mut scratch = engine.scratch();
        let mut out = Vec::new();
        for (qi, q) in wl.queries.iter().enumerate() {
            for theta in [0.0, 0.1, 0.2, 0.35] {
                let raw = raw_threshold(theta, 10);
                let expect = oracle(&engine, q, raw, &mut scratch);
                let mut stats = QueryStats::new();
                // Every Auto call also recalibrates, so later iterations
                // exercise the planner in a moved state — results must
                // never move with it.
                let chosen = engine.query_auto(q, raw, &mut scratch, &mut stats, &mut out);
                assert!(
                    chosen.dense_index().is_some(),
                    "Auto must resolve to a concrete algorithm"
                );
                out.sort_unstable();
                assert_eq!(
                    out, expect,
                    "{name}: Auto (ran {chosen}) diverged from the Fv oracle \
                     at θ={theta}, query {qi}"
                );
            }
        }
    }
}

#[test]
fn auto_equals_oracle_under_restricted_candidate_sets() {
    let ds = nyt_like(600, 10, 57);
    let domain = ds.params.domain;
    let candidate_sets: [&[Algorithm]; 3] = [
        &[Algorithm::Auto, Algorithm::ListMerge, Algorithm::Coarse],
        &[Algorithm::Auto, Algorithm::Fv, Algorithm::BlockedPruneDrop],
        &[Algorithm::Auto, Algorithm::AdaptSearch],
    ];
    let oracle_engine = EngineBuilder::new(ds.store.clone())
        .algorithms(&[Algorithm::Fv])
        .build();
    let wl = workload(
        &ds.store,
        domain,
        WorkloadParams {
            num_queries: 10,
            seed: 21,
            ..Default::default()
        },
    );
    let mut oscratch = oracle_engine.scratch();
    for set in candidate_sets {
        let engine = EngineBuilder::new(ds.store.clone())
            .coarse_threshold(0.4)
            .algorithms(set)
            .calibrated_costs(CalibratedCosts::nominal(10))
            .build();
        let planner = engine.planner().expect("Auto builds the planner");
        assert_eq!(planner.candidates().len(), set.len() - 1);
        let mut scratch = engine.scratch();
        let mut out = Vec::new();
        for q in &wl.queries {
            for theta in [0.05, 0.2, 0.3] {
                let raw = raw_threshold(theta, 10);
                let expect = oracle(&oracle_engine, q, raw, &mut oscratch);
                let mut stats = QueryStats::new();
                let chosen = engine.query_auto(q, raw, &mut scratch, &mut stats, &mut out);
                assert!(
                    planner.candidates().contains(&chosen),
                    "planner escaped its candidate set: picked {chosen}"
                );
                out.sort_unstable();
                assert_eq!(out, expect, "candidates {set:?}, θ={theta}");
            }
        }
    }
}

#[test]
fn sharded_auto_equals_monolith_oracle() {
    let ds = nyt_like(800, 10, 73);
    let domain = ds.params.domain;
    let engine = EngineBuilder::new(ds.store.clone())
        .algorithms(&[Algorithm::Fv])
        .build();
    let wl = workload(
        &ds.store,
        domain,
        WorkloadParams {
            num_queries: 12,
            seed: 31,
            ..Default::default()
        },
    );
    let mut mscratch = engine.scratch();
    for strategy in [ShardStrategy::Hash, ShardStrategy::Medoid] {
        for shards in [1usize, 3] {
            let mut b = ShardedEngineBuilder::new(10, shards, strategy)
                .coarse_threshold(0.5)
                .coarse_drop_threshold(0.06)
                .algorithms(&[Algorithm::Auto])
                .calibrated_costs(CalibratedCosts::nominal(10));
            b.extend_from_store(&ds.store);
            let se = b.build();
            let mut sscratch = se.scratch();
            for q in &wl.queries {
                for theta in [0.0, 0.15, 0.3] {
                    let raw = raw_threshold(theta, 10);
                    let expect = oracle(&engine, q, raw, &mut mscratch);
                    let mut stats = QueryStats::new();
                    // Sharded results are already canonically sorted;
                    // per-shard planners may pick different executors
                    // per shard without changing the merged answer.
                    let got = se.query_items(Algorithm::Auto, q, raw, &mut sscratch, &mut stats);
                    assert_eq!(got, expect, "{strategy:?} S={shards} θ={theta}");
                }
            }
        }
    }
}

#[test]
fn auto_batch_driver_matches_sequential_auto_results_and_counts_picks() {
    let ds = nyt_like(700, 10, 91);
    let domain = ds.params.domain;
    let engine = EngineBuilder::new(ds.store.clone())
        .coarse_threshold(0.5)
        .coarse_drop_threshold(0.06)
        .build();
    let wl = workload(
        &ds.store,
        domain,
        WorkloadParams {
            num_queries: 24,
            seed: 17,
            ..Default::default()
        },
    );
    let raw = raw_threshold(0.2, 10);
    let oracle_engine = EngineBuilder::new(ds.store)
        .algorithms(&[Algorithm::Fv])
        .build();
    let mut oscratch = oracle_engine.scratch();
    for threads in [1usize, 3] {
        let (got, reports) =
            engine.query_batch_reported(Algorithm::Auto, &wl.queries, raw, threads);
        for (qi, q) in wl.queries.iter().enumerate() {
            let expect = oracle(&oracle_engine, q, raw, &mut oscratch);
            let mut sorted = got[qi].clone();
            sorted.sort_unstable();
            assert_eq!(sorted, expect, "query {qi} at {threads} threads");
        }
        // Telemetry invariants: every query planned exactly once, the
        // pick histogram sums to the batch, and predicted/actual cost
        // accumulators moved.
        let plan = merge_plan_reports(&reports);
        assert_eq!(plan.planned as usize, wl.queries.len());
        assert_eq!(plan.picks.iter().sum::<u64>(), plan.planned);
        assert!(plan.actual_ns > 0.0);
        let stats = merge_reports(&reports);
        assert!(stats.distance_calls + stats.entries_scanned > 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random corpora and queries: Auto equals the Fv oracle on both the
    /// monolithic and a 2-shard engine at arbitrary thresholds.
    #[test]
    fn auto_equals_oracle_on_random_corpora(
        rankings in proptest::collection::vec(
            proptest::sample::subsequence((0..24u32).collect::<Vec<u32>>(), 6).prop_shuffle(),
            60,
        ),
        query in proptest::sample::subsequence((0..24u32).collect::<Vec<u32>>(), 6).prop_shuffle(),
        theta in 0.0f64..0.5,
    ) {
        let mut store = RankingStore::new(6);
        for r in &rankings {
            store.push(&Ranking::new(r.iter().copied()).unwrap()).unwrap();
        }
        let raw = raw_threshold(theta, 6);
        let q: Vec<ItemId> = query.into_iter().map(ItemId).collect();
        let engine = EngineBuilder::new(store.clone())
            .coarse_threshold(0.3)
            .build();
        let mut scratch = engine.scratch();
        let expect = oracle(&engine, &q, raw, &mut scratch);
        let mut stats = QueryStats::new();
        let mut out = Vec::new();
        engine.query_auto(&q, raw, &mut scratch, &mut stats, &mut out);
        out.sort_unstable();
        prop_assert_eq!(&out, &expect, "monolith Auto θ={}", theta);

        let mut b = ShardedEngineBuilder::new(6, 2, ShardStrategy::Hash)
            .coarse_threshold(0.3)
            .algorithms(&[Algorithm::Auto])
            .calibrated_costs(CalibratedCosts::nominal(6));
        b.extend_from_store(&store);
        let se = b.build();
        let mut sscratch = se.scratch();
        let got = se.query_items(Algorithm::Auto, &q, raw, &mut sscratch, &mut stats);
        prop_assert_eq!(&got, &expect, "sharded Auto θ={}", theta);
    }
}
