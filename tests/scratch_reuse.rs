//! Scratch-reuse oracle: one [`QueryScratch`] shared across 50+
//! consecutive queries at mixed thresholds and algorithms must return
//! exactly the brute-force result set every time — any stale epoch state
//! (a candidate mark, a count, a bound cell, a query-map rank surviving
//! from an earlier query) would surface as a wrong result set here.

use ranksim::datasets::{nyt_like, workload, WorkloadParams};
use ranksim::prelude::*;

#[test]
fn one_scratch_across_many_queries_matches_brute_force() {
    let ds = nyt_like(1500, 10, 4242);
    let domain = ds.params.domain;
    let engine = EngineBuilder::new(ds.store)
        .coarse_threshold(0.5)
        .coarse_drop_threshold(0.06)
        .build();
    let store = engine.store();
    let wl = workload(
        store,
        domain,
        WorkloadParams {
            num_queries: 60,
            seed: 99,
            ..Default::default()
        },
    );
    assert!(wl.queries.len() >= 50, "oracle needs 50+ queries");

    // One scratch and one result buffer for the entire run; θ and the
    // algorithm change from query to query so every epoch structure is
    // exercised against every other's leftovers.
    let mut scratch = engine.scratch();
    let mut out = Vec::new();
    let thetas = [0.0, 0.1, 0.2, 0.3];
    for (qi, q) in wl.queries.iter().enumerate() {
        let theta = thetas[qi % thetas.len()];
        let raw = raw_threshold(theta, 10);
        let qmap = PositionMap::new(q);
        let mut expect: Vec<RankingId> = store
            .ids()
            .filter(|&id| qmap.distance_to(store.items(id)) <= raw)
            .collect();
        expect.sort_unstable();
        // Rotate the algorithm order so consecutive queries hand the
        // scratch between different algorithms in varying patterns.
        for step in 0..Algorithm::ALL.len() {
            let alg = Algorithm::ALL[(qi + step) % Algorithm::ALL.len()];
            let mut stats = QueryStats::new();
            engine.query_into(alg, q, raw, &mut scratch, &mut stats, &mut out);
            let mut got = out.clone();
            got.sort_unstable();
            assert_eq!(
                got, expect,
                "{alg} leaked stale scratch state at query {qi}, θ={theta}"
            );
        }
    }
}
