//! Differential harness: the sharded engine must be **indistinguishable**
//! from the monolithic engine.
//!
//! Random corpora are built twice — once into a monolithic [`Engine`],
//! once into a [`ShardedEngine`] at S ∈ {1, 2, 7} under both routing
//! strategies — and queried with rotating algorithms at mixed thresholds
//! plus top-k. Thresholds compare canonical (sorted) result sets; top-k
//! answers must be bit-identical `(distance, id)` sequences, which the
//! lexicographic tie rule of the KNN heap guarantees across any shard
//! layout.

use proptest::prelude::*;
use ranksim::prelude::*;

const SHARD_COUNTS: [usize; 3] = [1, 2, 7];

/// Strategy: a corpus of `n` size-`k` rankings over `0..domain`, biased
/// towards overlap so result sets are non-trivial.
fn corpus(n: usize, k: usize, domain: u32) -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(
        proptest::sample::subsequence((0..domain).collect::<Vec<u32>>(), k).prop_shuffle(),
        n,
    )
}

fn store_of(rankings: &[Vec<u32>]) -> RankingStore {
    let k = rankings[0].len();
    let mut store = RankingStore::new(k);
    for r in rankings {
        store
            .push(&Ranking::new(r.iter().copied()).unwrap())
            .unwrap();
    }
    store
}

fn monolith(store: RankingStore, theta_c: f64) -> Engine {
    EngineBuilder::new(store)
        .coarse_threshold(theta_c)
        .coarse_drop_threshold(0.06)
        .topk_tree(true)
        .build()
}

fn sharded(
    store: &RankingStore,
    shards: usize,
    strategy: ShardStrategy,
    theta_c: f64,
    topk_trees: bool,
) -> ShardedEngine {
    let mut b = ShardedEngineBuilder::new(store.k(), shards, strategy)
        .coarse_threshold(theta_c)
        .coarse_drop_threshold(0.06)
        .topk_trees(topk_trees);
    b.extend_from_store(store);
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Threshold queries: every algorithm, every shard count, both
    /// strategies, mixed θ — sharded result sets equal the monolith's.
    #[test]
    fn sharded_threshold_queries_equal_monolith(
        rankings in corpus(80, 6, 25),
        query in proptest::sample::subsequence((0..25u32).collect::<Vec<u32>>(), 6).prop_shuffle(),
        theta in 0.0f64..0.5,
        theta_c in 0.1f64..0.6,
    ) {
        let store = store_of(&rankings);
        let engine = monolith(store.clone(), theta_c);
        let raw = raw_threshold(theta, 6);
        let q: Vec<ItemId> = query.into_iter().map(ItemId).collect();
        let mut mscratch = engine.scratch();
        for strategy in [ShardStrategy::Hash, ShardStrategy::Medoid] {
            for (si, &shards) in SHARD_COUNTS.iter().enumerate() {
                let se = sharded(&store, shards, strategy, theta_c, false);
                prop_assert_eq!(se.len(), store.len());
                let mut sscratch = se.scratch();
                // Rotate which algorithm checks which shard count so the
                // whole grid is covered across cases without running the
                // full 8 × 6 cross product every time.
                for (ai, &alg) in Algorithm::ALL.iter().enumerate() {
                    if ai % SHARD_COUNTS.len() != si {
                        continue;
                    }
                    let mut st = QueryStats::new();
                    let mut expect = engine.query_items(alg, &q, raw, &mut mscratch, &mut st);
                    expect.sort_unstable();
                    let got = se.query_items(alg, &q, raw, &mut sscratch, &mut st);
                    prop_assert_eq!(
                        got, expect,
                        "{:?} S={} {} θ={}", strategy, shards, alg, theta
                    );
                }
            }
        }
    }

    /// Top-k queries: bit-identical `(distance, id)` sequences between
    /// the sharded merge and the monolithic BK-tree/linear answers.
    #[test]
    fn sharded_topk_queries_equal_monolith(
        rankings in corpus(70, 6, 20),
        query in proptest::sample::subsequence((0..20u32).collect::<Vec<u32>>(), 6).prop_shuffle(),
        neighbours in 1usize..30,
    ) {
        let store = store_of(&rankings);
        let engine = monolith(store.clone(), 0.3);
        let q: Vec<ItemId> = query.into_iter().map(ItemId).collect();
        let mut mscratch = engine.scratch();
        let mut st = QueryStats::new();
        let expect = engine.query_topk(&q, neighbours, &mut mscratch, &mut st);
        prop_assert_eq!(expect.len(), neighbours.min(store.len()));
        for strategy in [ShardStrategy::Hash, ShardStrategy::Medoid] {
            for &shards in &SHARD_COUNTS {
                // Alternate per-shard BK-trees and per-shard linear scans:
                // the answer must not depend on the shard-local method.
                let trees = shards % 2 == 0;
                let se = sharded(&store, shards, strategy, 0.3, trees);
                let mut sscratch = se.scratch();
                let got = se.query_topk(&q, neighbours, &mut sscratch, &mut st);
                prop_assert_eq!(
                    got,
                    expect.clone(),
                    "{:?} S={} kn={}", strategy, shards, neighbours
                );
            }
        }
    }

    /// The work-stealing sharded batch driver equals per-query sharded
    /// processing (and therefore the monolith, by the tests above).
    #[test]
    fn sharded_batch_driver_equals_sequential(
        rankings in corpus(60, 5, 18),
        queries in proptest::collection::vec(
            proptest::sample::subsequence((0..18u32).collect::<Vec<u32>>(), 5).prop_shuffle(),
            1..12,
        ),
        theta in 0.0f64..0.4,
        threads in 1usize..5,
    ) {
        let store = store_of(&rankings);
        let raw = raw_threshold(theta, 5);
        let qs: Vec<Vec<ItemId>> = queries
            .into_iter()
            .map(|q| q.into_iter().map(ItemId).collect())
            .collect();
        let se = sharded(&store, 2, ShardStrategy::Hash, 0.3, false);
        let (got, reports) = se.query_batch_reported(Algorithm::Fv, &qs, raw, threads);
        let mut sscratch = se.scratch();
        let mut seq = QueryStats::new();
        for (qi, q) in qs.iter().enumerate() {
            let expect = se.query_items(Algorithm::Fv, q, raw, &mut sscratch, &mut seq);
            prop_assert_eq!(&got[qi], &expect, "query {}", qi);
        }
        // The driver splits work at (query × shard) granularity: each
        // worker claims one (query, active shard) task, so the claimed
        // total is queries × active shards, not queries.
        let active = se.shard_sizes().iter().filter(|&&s| s > 0).count();
        let claimed: u64 = reports.iter().map(|r| r.queries).sum();
        prop_assert_eq!(claimed as usize, qs.len() * active);
        prop_assert_eq!(ranksim::core::merge_reports(&reports), seq);
    }
}

// ---------------------------------------------------------------------
// Deadline semantics under the (query × shard) task split.
//
// The split means one query owns several stealable tasks; a deadline
// that fires on one of them while sibling tasks completed must fail the
// *whole* query — typed `timed_out`, empty result set — never return a
// silently truncated merge of the shards that happened to finish.
// ---------------------------------------------------------------------

/// A two-shard medoid engine with one deliberately heavy shard: medoid A
/// and medoid B are item-disjoint, and every later ranking overlaps A
/// heavily, so shard 0 swallows the whole corpus while shard 1 holds the
/// lone medoid B. Scanning shard 0 costs orders of magnitude more than
/// shard 1 — the straggler-task shape the deadline contract is about.
fn skewed_sharded(n: usize, seed: u64) -> (ShardedEngine, Vec<Vec<ItemId>>) {
    use rand::Rng;
    const K: usize = 8;
    let mut rng = proptest::rng_from_seed(seed);
    let mut b = ShardedEngineBuilder::new(K, 2, ShardStrategy::Medoid)
        .coarse_threshold(0.4)
        .algorithms(&[Algorithm::Fv]);
    let medoid_a: Vec<ItemId> = (0u32..K as u32).map(ItemId).collect();
    let medoid_b: Vec<ItemId> = (100u32..100 + K as u32).map(ItemId).collect();
    b.push_ranking(&medoid_a);
    b.push_ranking(&medoid_b);
    let mut near_a = || -> Vec<ItemId> {
        let mut items: Vec<ItemId> = Vec::with_capacity(K);
        while items.len() < K {
            let cand = ItemId(rng.random_range(0..12u32));
            if !items.contains(&cand) {
                items.push(cand);
            }
        }
        items
    };
    let mut queries = Vec::new();
    for i in 0..n {
        let items = near_a();
        if i % (n / 6).max(1) == 0 && queries.len() < 6 {
            queries.push(items.clone());
        }
        b.push_ranking(&items);
    }
    let se = b.build();
    assert!(
        se.shard_sizes()[0] > n && se.shard_sizes()[1] == 1,
        "medoid routing must concentrate the corpus on shard 0 (got {:?})",
        se.shard_sizes()
    );
    (se, queries)
}

/// The regression pin: a tiny budget on the skewed corpus expires while
/// shard-0 tasks are mid-scan, so some queries have completed per-shard
/// partials when their sibling task times out. Every such query must
/// come back empty and flagged — under the pre-fix behavior the
/// completed partials were merged, returning truncated result sets with
/// no failure marker.
#[test]
fn sharded_deadline_fails_whole_queries_never_truncates() {
    let (se, queries) = skewed_sharded(6000, 0x5EED_D15C);
    let raw = raw_threshold(0.35, 8);
    let (oracle, _) = se.query_batch(Algorithm::Fv, &queries, raw, 1);
    assert!(
        oracle.iter().all(|r| !r.is_empty()),
        "self-queries must match at θ=0.35 for truncation to be observable"
    );

    let (got, reports) = se.query_batch_deadline(
        Algorithm::Fv,
        &queries,
        raw,
        1,
        std::time::Duration::from_micros(100),
    );
    let mut flagged: Vec<usize> = reports.iter().flat_map(|r| r.timed_out.clone()).collect();
    flagged.sort_unstable();
    assert!(
        !flagged.is_empty(),
        "a 100µs budget cannot cover a 6000-ranking shard scan"
    );
    let deduped = {
        let mut f = flagged.clone();
        f.dedup();
        f
    };
    assert_eq!(
        flagged, deduped,
        "each timed-out query is reported exactly once across all workers"
    );
    for (qi, result) in got.iter().enumerate() {
        if flagged.binary_search(&qi).is_ok() {
            assert!(
                result.is_empty(),
                "query {qi} timed out on at least one shard task; merging its completed \
                 sibling partials would be a silently truncated result set"
            );
        } else {
            assert_eq!(
                result, &oracle[qi],
                "query {qi} ran on every shard and must be bit-identical to the oracle"
            );
        }
    }
}

/// Zero budget: every query (not every *task*) is flagged exactly once
/// and answered empty.
#[test]
fn sharded_deadline_zero_budget_times_out_every_query() {
    let (se, queries) = skewed_sharded(300, 0xBEEF);
    let raw = raw_threshold(0.2, 8);
    let (got, reports) =
        se.query_batch_deadline(Algorithm::Fv, &queries, raw, 2, std::time::Duration::ZERO);
    assert!(got.iter().all(|r| r.is_empty()));
    let mut flagged: Vec<usize> = reports.iter().flat_map(|r| r.timed_out.clone()).collect();
    flagged.sort_unstable();
    assert_eq!(
        flagged,
        (0..queries.len()).collect::<Vec<_>>(),
        "every query is flagged once at query granularity, not once per shard task"
    );
}

/// A generous budget is indistinguishable from the plain batch driver.
#[test]
fn sharded_deadline_generous_budget_matches_plain_batch() {
    let (se, queries) = skewed_sharded(300, 0xCAFE);
    let raw = raw_threshold(0.3, 8);
    let (expect, _) = se.query_batch(Algorithm::Fv, &queries, raw, 2);
    let (got, reports) = se.query_batch_deadline(
        Algorithm::Fv,
        &queries,
        raw,
        2,
        std::time::Duration::from_secs(120),
    );
    assert_eq!(got, expect);
    assert!(reports.iter().all(|r| r.timed_out.is_empty()));
}
