//! Concurrent differential harness for the RCU snapshot engine: a
//! snapshot observed **mid-mutation** must be bit-identical to a
//! monolith freshly built at the same log prefix.
//!
//! This extends the machinery of `tests/mutation_equivalence.rs` (same
//! seed-derived op interleavings, same hole-preserving oracle) across a
//! thread boundary: one writer thread replays the interleaving through
//! [`SnapshotEngine`]'s `&self` writer API while reader threads
//! continuously grab snapshots and differential-check them. The crucial
//! property is the log-prefix anchor: with a single writer, every
//! logged operation is one log record, so a snapshot at `log_pos() = p`
//! must answer **exactly** like an engine built from scratch over the
//! model corpus after `ops[..p]` — no matter what the writer, the
//! publisher thread, or a racing compaction is doing at that instant.
//!
//! Readers check every algorithm (including `Auto`, whose planner state
//! is forked per generation) as canonical id sets and top-k answers as
//! bit-identical `(distance, id)` sequences, both against an `Fv`
//! oracle — the same contract the single-threaded harness enforces.

use std::sync::atomic::{AtomicBool, Ordering};

use rand::rngs::StdRng;
use rand::Rng;
use ranksim::prelude::*;

const K: usize = 8;
const DOMAIN: u32 = 64;

/// One mutation of the interleaving (the `mutation_equivalence` op
/// alphabet; removes always target a live id by construction).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Op {
    Insert(Vec<ItemId>),
    Remove(RankingId),
    Compact,
}

/// The model corpus: `model[id] = Some(items)` iff ranking `id` is live.
type Model = Vec<Option<Vec<ItemId>>>;

fn random_ranking(rng: &mut StdRng, model: &Model) -> Vec<ItemId> {
    let live: Vec<&Vec<ItemId>> = model.iter().flatten().collect();
    if !live.is_empty() && rng.random_bool(0.6) {
        let mut items = live[rng.random_range(0..live.len())].clone();
        if rng.random_bool(0.5) {
            let a = rng.random_range(0..K);
            let b = rng.random_range(0..K);
            items.swap(a, b);
        } else {
            let p = rng.random_range(0..K);
            let span = if rng.random_bool(0.2) {
                100_000
            } else {
                DOMAIN
            };
            let mut cand = ItemId(rng.random_range(0..span));
            while items.contains(&cand) {
                cand = ItemId(rng.random_range(0..span));
            }
            items[p] = cand;
        }
        items
    } else {
        let mut items = Vec::with_capacity(K);
        while items.len() < K {
            let cand = ItemId(rng.random_range(0..DOMAIN));
            if !items.contains(&cand) {
                items.push(cand);
            }
        }
        items
    }
}

/// Seed → (initial corpus, op interleaving), deterministically.
fn derive_case(seed: u64, initial: usize, ops: usize) -> (Vec<Vec<ItemId>>, Vec<Op>) {
    let mut rng = proptest::rng_from_seed(seed);
    let mut model: Model = Vec::new();
    let mut corpus = Vec::with_capacity(initial);
    for _ in 0..initial {
        let items = random_ranking(&mut rng, &model);
        model.push(Some(items.clone()));
        corpus.push(items);
    }
    let mut sequence = Vec::with_capacity(ops);
    for _ in 0..ops {
        let live: Vec<u32> = (0..model.len() as u32)
            .filter(|&i| model[i as usize].is_some())
            .collect();
        let roll = rng.random_range(0..100u32);
        let op = if roll < 8 && !live.is_empty() {
            Op::Compact
        } else if roll < 54 || live.len() < 8 {
            let items = random_ranking(&mut rng, &model);
            model.push(Some(items.clone()));
            Op::Insert(items)
        } else {
            let victim = live[rng.random_range(0..live.len())];
            model[victim as usize] = None;
            Op::Remove(RankingId(victim))
        };
        sequence.push(op);
    }
    (corpus, sequence)
}

/// A fresh engine over the model corpus at the original ids (holes
/// where the live corpus has none) — the ground truth for one prefix.
fn oracle_engine(model: &Model) -> Engine {
    let mut store = RankingStore::new(K);
    for slot in model {
        match slot {
            Some(items) => {
                store.push_items_unchecked(items);
            }
            None => {
                store.push_hole();
            }
        }
    }
    EngineBuilder::new(store)
        .coarse_threshold(0.4)
        .coarse_drop_threshold(0.06)
        .calibrated_costs(CalibratedCosts::nominal(K))
        .topk_tree(true)
        .build()
}

/// The model corpus after every log prefix: `models[p]` is the state a
/// snapshot at `log_pos() == p` must be equivalent to. Single-writer
/// discipline makes `p` ↔ "ops[..p] applied" exact: every op in the
/// derived sequence appends exactly one log record (removes always hit
/// a live id, so none degrade to a no-op).
fn model_prefixes(corpus: &[Vec<ItemId>], ops: &[Op]) -> Vec<Model> {
    let mut model: Model = corpus.iter().cloned().map(Some).collect();
    let mut models = Vec::with_capacity(ops.len() + 1);
    models.push(model.clone());
    for op in ops {
        match op {
            Op::Insert(items) => model.push(Some(items.clone())),
            Op::Remove(id) => model[id.index()] = None,
            Op::Compact => {}
        }
        models.push(model.clone());
    }
    models
}

/// Differential check of one observed snapshot against the oracle at
/// its log prefix. Returns the observed position (for the progress
/// assertion).
fn check_snapshot(snap: &EngineSnapshot, models: &[Model], queries: &[Vec<ItemId>]) -> usize {
    let pos = snap.log_pos() as usize;
    let oracle = oracle_engine(&models[pos]);
    assert_eq!(
        snap.live_len(),
        oracle.live_len(),
        "live count at log prefix {pos}"
    );
    let mut oscratch = oracle.scratch();
    let mut sscratch = snap.scratch();
    let mut stats = QueryStats::new();
    for q in queries {
        for theta in [0.0, 0.12, 0.3] {
            let raw = raw_threshold(theta, K);
            let mut expect = oracle.query_items(Algorithm::Fv, q, raw, &mut oscratch, &mut stats);
            expect.sort_unstable();
            for alg in Algorithm::ALL.iter().copied().chain([Algorithm::Auto]) {
                let mut got = snap.query_items(alg, q, raw, &mut sscratch, &mut stats);
                got.sort_unstable();
                assert_eq!(
                    got, expect,
                    "snapshot {alg} diverged from the log-prefix-{pos} oracle at θ={theta}"
                );
            }
        }
        for kn in [1usize, 5, 17] {
            let expect = oracle.query_topk(q, kn, &mut oscratch, &mut stats);
            let got = snap.query_topk(q, kn, &mut sscratch, &mut stats);
            assert_eq!(got, expect, "snapshot topk k={kn} at log prefix {pos}");
        }
    }
    pos
}

/// Runs one seed: a writer thread replays the interleaving through the
/// snapshot engine while `readers` threads race it, checking every
/// snapshot they observe against the oracle at that snapshot's exact
/// log prefix.
fn run_concurrent_case(seed: u64, initial: usize, ops: usize, readers: usize) {
    let (corpus, sequence) = derive_case(seed, initial, ops);
    let models = model_prefixes(&corpus, &sequence);

    // Fixed query set (near-misses of the *final* model keep them
    // relevant across every prefix).
    let mut qrng = proptest::rng_from_seed(seed ^ 0x5EED);
    let queries: Vec<Vec<ItemId>> = (0..3)
        .map(|_| random_ranking(&mut qrng, models.last().unwrap()))
        .collect();

    let mut store = RankingStore::new(K);
    for items in &corpus {
        store.push_items_unchecked(items);
    }
    let engine = EngineBuilder::new(store)
        .coarse_threshold(0.4)
        .coarse_drop_threshold(0.06)
        .calibrated_costs(CalibratedCosts::nominal(K))
        .topk_tree(true)
        .compaction_threshold(0.4) // auto-compaction racing the readers
        .build();
    let service = SnapshotEngine::new(engine);
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let reader_handles: Vec<_> = (0..readers)
            .map(|_| {
                let service = &service;
                let done = &done;
                let models = &models;
                let queries = &queries;
                scope.spawn(move || {
                    let mut positions = Vec::new();
                    while !done.load(Ordering::Acquire) {
                        let snap = service.snapshot();
                        positions.push(check_snapshot(&snap, models, queries));
                    }
                    positions
                })
            })
            .collect();

        // The writer: one op at a time through the `&self` API, with a
        // breather so readers observe many intermediate generations.
        let mut expected_id = corpus.len() as u32;
        for op in &sequence {
            match op {
                Op::Insert(items) => {
                    let got = service.insert_ranking(items);
                    assert_eq!(got, RankingId(expected_id), "id assignment is monotone");
                    expected_id += 1;
                }
                Op::Remove(id) => {
                    assert!(service.remove_ranking(*id), "removes target live ids");
                }
                Op::Compact => service.compact(),
            }
            std::thread::sleep(std::time::Duration::from_micros(300));
        }
        service.flush();
        done.store(true, Ordering::Release);

        let mut observed: Vec<usize> = reader_handles
            .into_iter()
            .flat_map(|h| h.join().expect("reader panicked"))
            .collect();
        observed.sort_unstable();
        observed.dedup();
        // The race must actually have happened: readers saw genuinely
        // intermediate prefixes, not just the initial and final states.
        assert!(
            observed.len() >= 3,
            "readers observed only {observed:?} distinct log prefixes — no concurrency exercised"
        );
    });

    // After the dust settles: the final snapshot is at the full prefix
    // and equivalent to the final oracle.
    let snap = service.snapshot();
    assert_eq!(snap.log_pos() as usize, sequence.len());
    check_snapshot(&snap, &models, &queries);
}

/// The acceptance property: snapshots observed while a writer races
/// inserts, removes and compactions (explicit and automatic) through
/// the RCU engine are bit-identical to from-scratch builds at their
/// exact log prefix — for every algorithm, threshold and top-k.
#[test]
fn racing_snapshots_match_fresh_oracles_at_their_log_prefix() {
    let mut master = proptest::test_rng("snapshot_equivalence::concurrent");
    for _ in 0..2 {
        let seed = proptest::case_seed(&mut master);
        run_concurrent_case(seed, 110, 130, 3);
    }
}

/// Regression for the publisher's reclamation path: a reader pinning a
/// snapshot across many published generations must keep its frozen view
/// while the engine advances — and the abandoned generation is handed
/// off to the straggler rather than blocking publication.
#[test]
fn pinned_snapshot_survives_the_writer_racing_past_it() {
    let (corpus, sequence) = derive_case(0xD1FF, 100, 90);
    let models = model_prefixes(&corpus, &sequence);
    let mut qrng = proptest::rng_from_seed(0xD1FF ^ 0x5EED);
    let queries: Vec<Vec<ItemId>> = (0..3)
        .map(|_| random_ranking(&mut qrng, models.last().unwrap()))
        .collect();

    let mut store = RankingStore::new(K);
    for items in &corpus {
        store.push_items_unchecked(items);
    }
    let engine = EngineBuilder::new(store)
        .coarse_threshold(0.4)
        .coarse_drop_threshold(0.06)
        .calibrated_costs(CalibratedCosts::nominal(K))
        .topk_tree(true)
        .compaction_threshold(0.4)
        .build();
    let service = SnapshotEngine::new(engine);

    let pinned = service.snapshot();
    assert_eq!(pinned.log_pos(), 0);
    for op in &sequence {
        match op {
            Op::Insert(items) => {
                service.insert_ranking(items);
            }
            Op::Remove(id) => {
                service.remove_ranking(*id);
            }
            Op::Compact => service.compact(),
        }
    }
    service.flush();

    // The pinned snapshot still answers as the untouched initial state…
    check_snapshot(&pinned, &models, &queries);
    assert_eq!(pinned.log_pos(), 0);
    // …while the engine has long moved on.
    let fresh = service.snapshot();
    assert_eq!(fresh.log_pos() as usize, sequence.len());
    check_snapshot(&fresh, &models, &queries);
}
