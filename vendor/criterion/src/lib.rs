//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `criterion` its bench targets use: [`Criterion`],
//! benchmark groups with `sample_size` / `warm_up_time` /
//! `measurement_time`, `bench_function` / `bench_with_input`,
//! [`Bencher::iter`], [`BenchmarkId`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is honest but simple: one warm-up call followed by
//! `sample_size` timed iterations per benchmark, reporting mean / min /
//! max wall-clock time to stdout. No statistical analysis, HTML reports,
//! or baseline comparisons — the workspace's statistically meaningful
//! numbers come from the `repro` binary; these targets exist so
//! `cargo bench` gives quick spot measurements.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark driver handed to the `criterion_group!` target functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 100,
        }
    }

    /// A stand-alone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_bench(&id.to_string(), 100, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the vendored runner always does
    /// exactly one warm-up iteration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the vendored runner always times
    /// exactly `sample_size` iterations.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `sample_size` calls of `routine` (after one warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            std::hint::black_box(out);
        }
    }
}

/// Prevents the optimizer from discarding a value (upstream re-export).
pub use std::hint::black_box;

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<48} (no measurement: Bencher::iter never called)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().expect("non-empty");
    let max = b.samples.iter().max().expect("non-empty");
    println!(
        "{label:<48} mean {mean:>12.2?}   min {min:>12.2?}   max {max:>12.2?}   ({} samples)",
        b.samples.len()
    );
}

/// Declares a function running each listed benchmark with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
