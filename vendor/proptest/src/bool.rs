//! Boolean strategies.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// A fair coin.
#[derive(Debug, Clone, Copy)]
pub struct Any;

/// The canonical fair-coin strategy.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.random()
    }
}
