//! Collection strategies.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// The length specification of [`vec`]: a fixed size or a half-open
/// `min..max` range, mirroring the subset of upstream's `SizeRange`
/// conversions the workspace uses.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            min: len,
            max: len + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty length range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty length range");
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// A strategy for `Vec`s whose length is drawn from `len` (a fixed size
/// or a `min..max` range) and whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        len: len.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.len.min + 1 == self.len.max {
            self.len.min
        } else {
            rng.random_range(self.len.min..self.len.max)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
