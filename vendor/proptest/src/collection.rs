//! Collection strategies.

use crate::strategy::Strategy;
use rand::rngs::StdRng;

/// A strategy for `Vec`s of exactly `len` elements drawn from `element`.
///
/// Upstream accepts any size range here; the workspace only ever asks for
/// fixed lengths, so that is all the vendored subset supports.
pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        (0..self.len).map(|_| self.element.generate(rng)).collect()
    }
}
