//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `proptest` its test-suites use: the [`proptest!`]
//! macro, [`prop_assert!`] / [`prop_assert_eq!`], the [`Strategy`] trait
//! with `prop_map` / `prop_shuffle`, [`Just`], [`ProptestConfig`],
//! [`collection::vec`], [`sample::subsequence`] and [`bool::ANY`].
//!
//! Semantics deliberately kept from upstream:
//!
//! * each `#[test]` inside `proptest!` runs `ProptestConfig::cases`
//!   generated inputs (default 256),
//! * `prop_assert*!` failures abort only the failing case and report the
//!   generated inputs,
//! * generation is deterministic: a master RNG seeded from the test's
//!   name draws one **case seed** per case, so CI failures reproduce
//!   locally.
//!
//! Because this subset does not shrink failing inputs, a failure
//! additionally prints its case seed and the exact environment override
//! to replay *only* that case:
//!
//! ```text
//! RANKSIM_PROPTEST_SEED=0x53a9... cargo test -p <crate> <test_name>
//! ```
//!
//! With `RANKSIM_PROPTEST_SEED` set (hex `0x…` or decimal), every
//! `proptest!` test in the process runs exactly one case from that seed —
//! the stopgap for debugging until real shrinking exists (see
//! `vendor/README.md`).
//!
//! Deliberately dropped (none of the workspace's tests rely on them):
//! shrinking of failing inputs, persisted failure regressions, `any<T>()`
//! and the full strategy combinator zoo.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod bool;
pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;

pub use strategy::{Just, Strategy};

/// Per-test configuration (only the `cases` knob is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated inputs per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure raised by `prop_assert*!` inside a proptest case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic per-test RNG: seeded from the test name (FNV-1a), so a
/// failing case reproduces on every run and machine.
pub fn test_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Draws the next case seed from the master RNG (one per case, so a
/// failing case is replayable in isolation from its seed alone).
pub fn case_seed(master: &mut StdRng) -> u64 {
    master.random()
}

/// The RNG of one case, reconstructed from its seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Parses a seed string: hex with a `0x` prefix, or decimal.
pub fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// The `RANKSIM_PROPTEST_SEED` environment override, if set and valid:
/// run exactly one case from this seed instead of the full sweep.
pub fn seed_override() -> Option<u64> {
    let v = std::env::var("RANKSIM_PROPTEST_SEED").ok()?;
    let parsed = parse_seed(&v);
    assert!(
        parsed.is_some(),
        "RANKSIM_PROPTEST_SEED='{v}' is not a hex (0x…) or decimal u64"
    );
    parsed
}

/// The entry-point macro: wraps `#[test] fn name(arg in strategy, ...)`
/// items into zero-argument libtest tests that run many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // One seed per case, drawn from the name-seeded master
                // RNG — or a single externally supplied seed when
                // RANKSIM_PROPTEST_SEED re-runs one failing case.
                let seeds: ::std::vec::Vec<u64> = match $crate::seed_override() {
                    ::core::option::Option::Some(seed) => vec![seed],
                    ::core::option::Option::None => {
                        let mut master = $crate::test_rng(
                            concat!(module_path!(), "::", stringify!($name)),
                        );
                        (0..config.cases).map(|_| $crate::case_seed(&mut master)).collect()
                    }
                };
                let total = seeds.len();
                for (case, seed) in seeds.into_iter().enumerate() {
                    let mut rng = $crate::rng_from_seed(seed);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)*),
                        $(&$arg),*
                    );
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}\n  re-run exactly this case with: RANKSIM_PROPTEST_SEED={:#018x} cargo test {}",
                            case + 1,
                            total,
                            e,
                            inputs,
                            seed,
                            stringify!($name)
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_seed_accepts_hex_and_decimal() {
        assert_eq!(parse_seed("0x10"), Some(16));
        assert_eq!(parse_seed("0X0000000000000010"), Some(16));
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed(" 0xdeadbeef "), Some(0xdead_beef));
        assert_eq!(parse_seed("zzz"), None);
        assert_eq!(parse_seed("0x"), None);
    }

    #[test]
    fn case_seeds_are_deterministic_per_test_name() {
        let draw = |name: &str| {
            let mut master = test_rng(name);
            (0..4).map(|_| case_seed(&mut master)).collect::<Vec<u64>>()
        };
        assert_eq!(draw("mod::a"), draw("mod::a"));
        assert_ne!(draw("mod::a"), draw("mod::b"));
    }

    #[test]
    fn case_rng_replays_from_its_seed_alone() {
        let mut master = test_rng("mod::replay");
        let seed = case_seed(&mut master);
        let a: u64 = rng_from_seed(seed).random();
        let b: u64 = rng_from_seed(seed).random();
        assert_eq!(a, b);
    }

    // A deliberately failing proptest: the panic must carry the exact
    // RANKSIM_PROPTEST_SEED re-run line (the no-shrinking stopgap).
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        #[test]
        #[should_panic(expected = "re-run exactly this case with: RANKSIM_PROPTEST_SEED=0x")]
        fn failing_case_prints_rerun_seed(x in 0u32..100) {
            prop_assert!(x > 1000, "x = {} is never above 1000", x);
        }
    }
}

/// Asserts a condition inside a proptest case; on failure the case aborts
/// with the generated inputs attached.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n{}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}
