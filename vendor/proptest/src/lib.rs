//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `proptest` its test-suites use: the [`proptest!`]
//! macro, [`prop_assert!`] / [`prop_assert_eq!`], the [`Strategy`] trait
//! with `prop_map` / `prop_shuffle`, [`Just`], [`ProptestConfig`],
//! [`collection::vec`], [`sample::subsequence`] and [`bool::ANY`].
//!
//! Semantics deliberately kept from upstream:
//!
//! * each `#[test]` inside `proptest!` runs `ProptestConfig::cases`
//!   generated inputs (default 256),
//! * `prop_assert*!` failures abort only the failing case and report the
//!   generated inputs,
//! * generation is deterministic: the RNG is seeded from the test's name,
//!   so CI failures reproduce locally.
//!
//! Deliberately dropped (none of the workspace's tests rely on them):
//! shrinking of failing inputs, persisted failure regressions, `any<T>()`
//! and the full strategy combinator zoo.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod bool;
pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;

pub use strategy::{Just, Strategy};

/// Per-test configuration (only the `cases` knob is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated inputs per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure raised by `prop_assert*!` inside a proptest case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic per-test RNG: seeded from the test name (FNV-1a), so a
/// failing case reproduces on every run and machine.
pub fn test_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// The entry-point macro: wraps `#[test] fn name(arg in strategy, ...)`
/// items into zero-argument libtest tests that run many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)*),
                        $(&$arg),*
                    );
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            case + 1,
                            config.cases,
                            e,
                            inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a proptest case; on failure the case aborts
/// with the generated inputs attached.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n{}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}
