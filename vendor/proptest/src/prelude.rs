//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::strategy::{Just, Strategy};
pub use crate::{prop_assert, prop_assert_eq, proptest};
pub use crate::{ProptestConfig, TestCaseError};
