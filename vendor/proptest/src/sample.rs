//! Sampling strategies over concrete collections.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// A strategy yielding a uniformly random subsequence of exactly `size`
/// elements of `values`, in their original order.
///
/// Upstream accepts a size range; the workspace only uses exact sizes.
pub fn subsequence<T: Clone>(values: Vec<T>, size: usize) -> Subsequence<T> {
    assert!(
        size <= values.len(),
        "cannot draw a {size}-element subsequence from {} values",
        values.len()
    );
    Subsequence { values, size }
}

/// See [`subsequence`].
#[derive(Debug, Clone)]
pub struct Subsequence<T: Clone> {
    values: Vec<T>,
    size: usize,
}

impl<T: Clone> Strategy for Subsequence<T> {
    type Value = Vec<T>;

    fn generate(&self, rng: &mut StdRng) -> Vec<T> {
        // Floyd's algorithm for a uniform `size`-subset, then index order
        // restores the subsequence property.
        let n = self.values.len();
        let mut picked: Vec<usize> = Vec::with_capacity(self.size);
        for j in (n - self.size)..n {
            let t = rng.random_range(0..=j);
            if picked.contains(&t) {
                picked.push(j);
            } else {
                picked.push(t);
            }
        }
        picked.sort_unstable();
        picked.into_iter().map(|i| self.values[i].clone()).collect()
    }
}
