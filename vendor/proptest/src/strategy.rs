//! The [`Strategy`] trait and its combinators.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating random values (no shrinking in this vendored
/// subset — see the crate docs).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Uniformly permutes generated collections.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shuffleable,
    {
        Shuffle { inner: self }
    }
}

/// Collections [`Strategy::prop_shuffle`] can permute.
pub trait Shuffleable {
    /// Permutes `self` uniformly at random.
    fn shuffle(&mut self, rng: &mut StdRng);
}

impl<T> Shuffleable for Vec<T> {
    fn shuffle(&mut self, rng: &mut StdRng) {
        rand::seq::SliceRandom::shuffle(self.as_mut_slice(), rng);
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_shuffle`].
#[derive(Debug, Clone)]
pub struct Shuffle<S> {
    inner: S,
}

impl<S: Strategy> Strategy for Shuffle<S>
where
    S::Value: Shuffleable,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        let mut v = self.inner.generate(rng);
        v.shuffle(rng);
        v
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}
