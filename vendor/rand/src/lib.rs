//! Offline drop-in subset of the `rand` 0.9 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the thin slice of `rand` it actually uses (see
//! `vendor/README.md` for the policy): [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], the [`Rng`] convenience methods
//! `random`, `random_bool` and `random_range`, and
//! [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` here is xoshiro256++ (Blackman & Vigna) seeded through
//! SplitMix64 — not the ChaCha12 generator of the real crate, so streams
//! differ from upstream `rand`, but every consumer in this workspace only
//! relies on determinism-under-seed and reasonable statistical quality,
//! both of which xoshiro256++ provides.

pub mod rngs;
pub mod seq;

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from an `RngCore` (the `random()` family).
pub trait StandardUniform: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range; panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // The wrapped difference reinterpreted as the same-width
                // unsigned type is the exact span even for signed ranges
                // wider than the type's positive half; widening must go
                // through it to avoid sign extension.
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                // Multiply-shift (Lemire) keeps the bias below 2^-32 for the
                // sub-32-bit spans used throughout this workspace.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = end.wrapping_sub(start) as $u as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_int_sample_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// One value of `T` from its standard distribution (`f64` uniform in
    /// `[0, 1)`, integers uniform over the type, `bool` fair).
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p` (`p` clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        f64::sample(self) < p
    }

    /// One value uniform over `range` (half-open or inclusive).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0..=5usize);
            assert!(y <= 5);
        }
    }

    #[test]
    fn random_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn signed_range_wider_than_positive_half_stays_in_bounds() {
        // Regression: the span of a signed range wider than T::MAX must
        // widen through the unsigned same-width type, not sign-extend.
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = rng.random_range(-2_000_000_000..2_000_000_000i32);
            assert!((-2_000_000_000..2_000_000_000).contains(&x), "{x}");
            let y = rng.random_range(i32::MIN..=i32::MAX);
            let _ = y; // full-domain fast path must not panic
            let z = rng.random_range(-5..=5i64);
            assert!((-5..=5).contains(&z), "{z}");
        }
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle virtually never fixes all");
    }
}
