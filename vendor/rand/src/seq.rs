//! Sequence-related random operations.

use crate::{RngCore, SampleRange};

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_single(rng);
            self.swap(i, j);
        }
    }
}
